//! Problem construction: variables, constraints and objective.

use crate::branch_bound;
pub use crate::branch_bound::SolveStats;
use crate::error::SolveError;
use crate::expr::{LinExpr, Var};
use crate::rational::Rational;
use crate::solution::Solution;
use std::fmt;

/// Optimisation direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Sense {
    /// Maximise the objective.
    Maximize,
    /// Minimise the objective.
    Minimize,
}

/// Comparison relation of a constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Relation {
    /// Left-hand side ≤ right-hand side.
    Le,
    /// Left-hand side = right-hand side.
    Eq,
    /// Left-hand side ≥ right-hand side.
    Ge,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Relation::Le => write!(f, "≤"),
            Relation::Eq => write!(f, "="),
            Relation::Ge => write!(f, "≥"),
        }
    }
}

/// A linear constraint `expr REL rhs` (constant folded into `rhs`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Constraint {
    pub(crate) expr: LinExpr,
    pub(crate) relation: Relation,
    pub(crate) rhs: Rational,
    pub(crate) label: Option<String>,
}

impl Constraint {
    /// The variable part of the constraint (constant removed).
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The relation of the constraint.
    pub fn relation(&self) -> Relation {
        self.relation
    }

    /// The right-hand-side constant.
    pub fn rhs(&self) -> Rational {
        self.rhs
    }

    /// Optional human-readable label.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// Checks whether an assignment satisfies this constraint.
    pub fn is_satisfied_by(&self, mut assignment: impl FnMut(Var) -> Rational) -> bool {
        let lhs = self.expr.eval(&mut assignment);
        match self.relation {
            Relation::Le => lhs <= self.rhs,
            Relation::Eq => lhs == self.rhs,
            Relation::Ge => lhs >= self.rhs,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(l) = &self.label {
            write!(f, "[{l}] ")?;
        }
        write!(f, "{} {} {}", self.expr, self.relation, self.rhs)
    }
}

#[derive(Clone, Debug)]
pub(crate) struct VarData {
    pub(crate) name: String,
    pub(crate) lower: Rational,
    pub(crate) upper: Option<Rational>,
    pub(crate) integer: bool,
}

/// Builder for a single decision variable; created by
/// [`Problem::add_var`].
///
/// # Examples
///
/// ```
/// use ilp::Problem;
/// let mut p = Problem::maximize();
/// let n = p.add_var("n_pf0_co").integer().bounds(0, 1000).build();
/// assert_eq!(n.index(), 0);
/// ```
#[derive(Debug)]
pub struct VarBuilder<'a> {
    problem: &'a mut Problem,
    data: VarData,
}

impl<'a> VarBuilder<'a> {
    /// Restricts the variable to integer values (makes the problem an ILP).
    pub fn integer(mut self) -> Self {
        self.data.integer = true;
        self
    }

    /// Sets both bounds: `lower ≤ x ≤ upper`.
    pub fn bounds(mut self, lower: impl Into<Rational>, upper: impl Into<Rational>) -> Self {
        self.data.lower = lower.into();
        self.data.upper = Some(upper.into());
        self
    }

    /// Sets the lower bound only (default 0).
    pub fn lower(mut self, lower: impl Into<Rational>) -> Self {
        self.data.lower = lower.into();
        self
    }

    /// Sets the upper bound only.
    pub fn upper(mut self, upper: impl Into<Rational>) -> Self {
        self.data.upper = Some(upper.into());
        self
    }

    /// Registers the variable with the problem and returns its handle.
    pub fn build(self) -> Var {
        let id = Var(self.problem.vars.len() as u32);
        self.problem.vars.push(self.data);
        id
    }
}

/// An (integer) linear program under construction.
///
/// Variables default to continuous with bounds `[0, +∞)`; mark them
/// [`VarBuilder::integer`] to obtain an ILP. Solving an ILP runs exact
/// branch & bound over a two-phase rational simplex.
///
/// # Examples
///
/// Maximise `3x + 2y` subject to `x + y ≤ 4`, `x + 3y ≤ 6`:
///
/// ```
/// use ilp::{Problem, Rational};
///
/// # fn main() -> Result<(), ilp::SolveError> {
/// let mut p = Problem::maximize();
/// let x = p.add_var("x").build();
/// let y = p.add_var("y").build();
/// p.set_objective(x * 3 + y * 2);
/// p.add_le(x + y, 4);
/// p.add_le(x + y * 3, 6);
/// let sol = p.solve()?;
/// assert_eq!(sol.objective(), Rational::from_int(12));
/// assert_eq!(sol.value(x), Rational::from_int(4));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Problem {
    pub(crate) vars: Vec<VarData>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: LinExpr,
    pub(crate) sense: Sense,
    pub(crate) node_limit: u64,
    pub(crate) iteration_limit: u64,
}

impl Problem {
    /// Creates an empty maximisation problem.
    pub fn maximize() -> Self {
        Self::with_sense(Sense::Maximize)
    }

    /// Creates an empty minimisation problem.
    pub fn minimize() -> Self {
        Self::with_sense(Sense::Minimize)
    }

    /// Creates an empty problem with an explicit sense.
    pub fn with_sense(sense: Sense) -> Self {
        Problem {
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::new(),
            sense,
            node_limit: 200_000,
            iteration_limit: 2_000_000,
        }
    }

    /// Starts building a new variable with the given name.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarBuilder<'_> {
        VarBuilder {
            problem: self,
            data: VarData {
                name: name.into(),
                lower: Rational::ZERO,
                upper: None,
                integer: false,
            },
        }
    }

    /// Convenience: adds a non-negative integer variable with an upper
    /// bound, the shape used throughout the contention models.
    pub fn add_int_var(&mut self, name: impl Into<String>, upper: impl Into<Rational>) -> Var {
        self.add_var(name).integer().bounds(0, upper).build()
    }

    /// Sets the objective expression (constant terms are carried through to
    /// the reported objective value).
    pub fn set_objective(&mut self, expr: impl Into<LinExpr>) {
        self.objective = expr.into();
    }

    /// The current objective expression.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// The optimisation sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this problem.
    pub fn var_name(&self, v: Var) -> &str {
        &self.vars[v.index()].name
    }

    /// Returns `true` if `v` is integer-constrained.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this problem.
    pub fn is_integer(&self, v: Var) -> bool {
        self.vars[v.index()].integer
    }

    /// Caps the number of branch & bound nodes (default 200 000).
    pub fn set_node_limit(&mut self, limit: u64) {
        self.node_limit = limit;
    }

    /// Caps the total number of simplex pivots (default 2 000 000).
    pub fn set_iteration_limit(&mut self, limit: u64) {
        self.iteration_limit = limit;
    }

    fn add_constraint_inner(
        &mut self,
        lhs: LinExpr,
        relation: Relation,
        rhs: LinExpr,
        label: Option<String>,
    ) {
        let diff = lhs - rhs;
        let rhs_const = -diff.constant();
        let mut expr = diff;
        let k = expr.constant();
        expr -= LinExpr::constant_expr(k);
        self.constraints.push(Constraint {
            expr,
            relation,
            rhs: rhs_const,
            label,
        });
    }

    /// Adds `lhs ≤ rhs`.
    pub fn add_le(&mut self, lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) {
        self.add_constraint_inner(lhs.into(), Relation::Le, rhs.into(), None);
    }

    /// Adds `lhs = rhs`.
    pub fn add_eq(&mut self, lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) {
        self.add_constraint_inner(lhs.into(), Relation::Eq, rhs.into(), None);
    }

    /// Adds `lhs ≥ rhs`.
    pub fn add_ge(&mut self, lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) {
        self.add_constraint_inner(lhs.into(), Relation::Ge, rhs.into(), None);
    }

    /// Adds a labelled constraint; the label shows up in
    /// the rendered [`Constraint`] and eases debugging of large models.
    pub fn add_labeled(
        &mut self,
        label: impl Into<String>,
        lhs: impl Into<LinExpr>,
        relation: Relation,
        rhs: impl Into<LinExpr>,
    ) {
        self.add_constraint_inner(lhs.into(), relation, rhs.into(), Some(label.into()));
    }

    /// Solves the problem.
    ///
    /// Continuous problems are solved by the two-phase simplex; problems
    /// with integer variables go through branch & bound.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if no assignment satisfies all
    /// constraints and bounds, [`SolveError::Unbounded`] if the objective
    /// can grow without limit, [`SolveError::BudgetExhausted`] if the
    /// node/pivot budget runs out, and
    /// [`SolveError::InvalidBounds`] for contradictory variable bounds.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.validate_bounds()?;
        branch_bound::solve(self)
    }

    /// Solves the problem and returns branch & bound statistics along
    /// with the solution — node count, total simplex pivots and whether
    /// the optimum was found by the rounding heuristic.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve`].
    pub fn solve_with_stats(&self) -> Result<(Solution, SolveStats), SolveError> {
        self.validate_bounds()?;
        branch_bound::solve_with_stats(self)
    }

    /// Solves the LP relaxation (integrality constraints dropped).
    ///
    /// For a maximisation problem the relaxation value always dominates
    /// the ILP optimum, so it is a *sound* (if slightly looser) upper
    /// bound — useful when branch & bound hits its node budget on
    /// degenerate instances.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve`], except that integrality gaps cannot
    /// cause infeasibility.
    pub fn solve_relaxation(&self) -> Result<Solution, SolveError> {
        self.validate_bounds()?;
        branch_bound::solve_relaxed(self)
    }

    fn validate_bounds(&self) -> Result<(), SolveError> {
        for v in &self.vars {
            if let Some(u) = v.upper {
                if v.lower > u {
                    return Err(SolveError::InvalidBounds {
                        name: v.name.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sense {
            Sense::Maximize => writeln!(f, "maximize {}", self.objective)?,
            Sense::Minimize => writeln!(f, "minimize {}", self.objective)?,
        }
        writeln!(f, "subject to")?;
        for c in &self.constraints {
            writeln!(f, "  {c}")?;
        }
        for (i, v) in self.vars.iter().enumerate() {
            write!(f, "  {} ≤ x{i}", v.lower)?;
            if let Some(u) = v.upper {
                write!(f, " ≤ {u}")?;
            }
            if v.integer {
                write!(f, "  (integer, {})", v.name)?;
            } else {
                write!(f, "  ({})", v.name)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding_moves_constants_to_rhs() {
        let mut p = Problem::maximize();
        let x = p.add_var("x").build();
        p.add_le(x + 5, 12);
        let c = &p.constraints()[0];
        assert_eq!(c.rhs(), Rational::from_int(7));
        assert_eq!(c.expr().constant(), Rational::ZERO);
    }

    #[test]
    fn expr_on_both_sides() {
        let mut p = Problem::maximize();
        let x = p.add_var("x").build();
        let y = p.add_var("y").build();
        // x + 3 ≥ y - 2  →  x - y ≥ -5
        p.add_ge(x + 3, y - 2);
        let c = &p.constraints()[0];
        assert_eq!(c.expr().coeff(x), Rational::ONE);
        assert_eq!(c.expr().coeff(y), -Rational::ONE);
        assert_eq!(c.rhs(), Rational::from_int(-5));
    }

    #[test]
    fn invalid_bounds_reported_with_name() {
        let mut p = Problem::maximize();
        let _x = p.add_var("broken").bounds(5, 3).build();
        match p.solve() {
            Err(SolveError::InvalidBounds { name }) => assert_eq!(name, "broken"),
            other => panic!("expected InvalidBounds, got {other:?}"),
        }
    }

    #[test]
    fn constraint_satisfaction_check() {
        let mut p = Problem::maximize();
        let x = p.add_var("x").build();
        p.add_le(x * 2, 10);
        let c = &p.constraints()[0];
        assert!(c.is_satisfied_by(|_| Rational::from_int(5)));
        assert!(!c.is_satisfied_by(|_| Rational::from_int(6)));
    }

    #[test]
    fn display_includes_labels_and_bounds() {
        let mut p = Problem::minimize();
        let x = p.add_var("n_dfl").integer().bounds(0, 9).build();
        p.set_objective(x * 2);
        p.add_labeled("eq10", x, Relation::Le, 4);
        let s = p.to_string();
        assert!(s.contains("minimize"), "{s}");
        assert!(s.contains("[eq10]"), "{s}");
        assert!(s.contains("integer"), "{s}");
    }
}
