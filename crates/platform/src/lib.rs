//! Platform descriptions: the silicon shape as data.
//!
//! The paper analyses one fixed platform — three TriCore cores behind a
//! per-slave round-robin SRI with the Table 2 service latencies. This
//! crate turns that shape into a first-class value, [`PlatformDesc`]:
//! how many cores, which slave slots exist, each slave's service
//! latencies, and which arbitration policy ([`Arbitration`]) each slave
//! runs. The simulator derives its `SimConfig` from a description and
//! the analytical models derive their latency/stall tables from the same
//! description, so the two sides can never disagree about the platform.
//!
//! The crate is a dependency leaf (no simulator, no models): both
//! `tc27x-sim` and `contention` depend on it, and everything downstream
//! (mbta, serve, dse, bench, CLI) names platforms through the built-in
//! registry ([`PlatformDesc::builtin`]).
//!
//! ## Slave slots
//!
//! A description always has [`SLAVE_SLOTS`] = 4 slots in the fixed order
//! `[pf0, pf1, dfl, lmu]` shared with the simulator's `SriTarget` and
//! the models' `Target`. A platform with fewer physical slaves marks the
//! unused slots absent ([`SlaveDesc::present`] = false); placements into
//! an absent slot are rejected at load time and the models treat the
//! slot's access paths as infeasible. This keeps every fingerprint,
//! table and counter layout dense and platform-independent.
//!
//! ## Arbitration and per-access interference charges
//!
//! [`PlatformDesc::contention_latency`] is the single source of truth
//! for the per-access worst-case charge `l^{t,o}` each policy admits:
//!
//! * **Priority-then-round-robin** — one contender request can occupy
//!   the slave for its full `service` ahead of ours: `l = service`
//!   (Table 2's latency row on the TC27x).
//! * **Fixed priority** — per-class worst case: a contender that
//!   outranks the analysed core gets a whole `service` ahead of us;
//!   if nobody outranks us only a non-preemptable request already in
//!   flight can block, for at most `service − 1` cycles. One request
//!   per contender per analysed access, the same single-outstanding
//!   assumption the PTAC pairing makes.
//! * **TDMA** — time composable: contenders cannot delay a grant at
//!   all, but the analysed core's own worst slot alignment costs
//!   `(S−1)·slot_len + service − 1` cycles of wait (arrive one cycle
//!   after the last feasible start in our slot, wait out the `S−1`
//!   foreign slots). That exact worst-case wait is the charge — it
//!   bounds any deployment phase against any isolation phase, and is
//!   deliberately independent of the contender.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

use std::fmt;
use std::sync::OnceLock;

/// Number of slave slots every description carries, in the fixed order
/// `[pf0, pf1, dfl, lmu]` shared with the simulator and the models.
pub const SLAVE_SLOTS: usize = 4;

/// Hard capacity bound on cores: descriptions may use fewer
/// ([`PlatformDesc::cores`]), never more.
pub const MAX_CORES: usize = 3;

/// Per-slave arbitration policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Arbitration {
    /// Priority classes per core, round-robin within a class; with all
    /// cores in one class (the TC27x default) this is plain round-robin.
    PriorityRoundRobin,
    /// Strict fixed priority over cores: the highest
    /// [`PlatformDesc::master_priority`] class always wins, ties broken
    /// by the lower core index. In-flight transactions are never
    /// preempted.
    FixedPriority,
    /// Time-division multiplexing: the schedule cycles through one slot
    /// of `slot_len` cycles per active core; a request is granted only
    /// in its own slot and only if its service fits the remainder of the
    /// slot, so transactions never spill into foreign slots.
    Tdma {
        /// Slot length in cycles; must cover the slave's longest
        /// service (validated).
        slot_len: u32,
    },
}

impl fmt::Display for Arbitration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arbitration::PriorityRoundRobin => write!(f, "prr"),
            Arbitration::FixedPriority => write!(f, "fp"),
            Arbitration::Tdma { slot_len } => write!(f, "tdma({slot_len})"),
        }
    }
}

/// One slave slot of the interconnect.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SlaveDesc {
    /// Stable short name (used in fingerprints and reports).
    pub name: &'static str,
    /// Whether the slot exists on this platform. Absent slots reject
    /// placements and are infeasible in the models.
    pub present: bool,
    /// Whether the slave has a sequential prefetcher whose hits are
    /// served in `service_sequential` and hide
    /// [`PlatformDesc::fetch_prefetch_hide`] pipeline cycles.
    pub prefetch: bool,
    /// Whether code fetches can address this slave.
    pub code: bool,
    /// Whether data accesses can address this slave.
    pub data: bool,
    /// Occupancy of a sequential/prefetched request; equals `service`
    /// for slaves without a prefetcher.
    pub service_sequential: u32,
    /// Worst-case occupancy of a single request.
    pub service: u32,
    /// Occupancy of a cache-line write-back burst.
    pub writeback_service: u32,
    /// Arbitration policy of this slave's port.
    pub arbitration: Arbitration,
}

impl SlaveDesc {
    /// An absent slot (placeholder for platforms with fewer slaves).
    pub fn absent(name: &'static str) -> Self {
        SlaveDesc {
            name,
            present: false,
            prefetch: false,
            code: false,
            data: false,
            service_sequential: 1,
            service: 1,
            writeback_service: 1,
            arbitration: Arbitration::PriorityRoundRobin,
        }
    }

    /// The slave's longest single-transaction occupancy (regular or
    /// write-back) — what a TDMA slot must cover.
    pub fn max_service(&self) -> u32 {
        self.service.max(self.writeback_service)
    }
}

/// Cache geometry as plain numbers (the simulator converts to its own
/// `CacheGeometry`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheShape {
    /// Total size in bytes.
    pub size_bytes: u32,
    /// Associativity (ways).
    pub ways: u32,
}

/// A full platform description. Everything the simulator and the models
/// need to agree on lives here; [`PlatformDesc::fingerprint`] binds it
/// into job keys, store fingerprints and campaign identities.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlatformDesc {
    /// Registry name (`tc27x`, `tc27x-tdma`, `ahb2`, ...).
    pub name: &'static str,
    /// Active cores, `1..=MAX_CORES`. Core ids `0..cores` are usable.
    pub cores: usize,
    /// The core the sweeps and experiments analyse (the "app" core).
    pub app_core: usize,
    /// The core the sweeps place the contender on.
    pub load_core: usize,
    /// Interconnect priority class per core (higher wins). Only the
    /// first `cores` entries are meaningful.
    pub master_priority: [u8; MAX_CORES],
    /// Pipeline cycles a sequential prefetched code fetch can hide.
    pub fetch_prefetch_hide: u32,
    /// Pipeline cycles any data access can hide (posted address phase).
    pub data_hide: u32,
    /// The slave slots, `[pf0, pf1, dfl, lmu]` order.
    pub slaves: [SlaveDesc; SLAVE_SLOTS],
    /// Instruction-cache geometry of performance cores.
    pub icache_p: CacheShape,
    /// Instruction-cache geometry of the efficiency core (core 0).
    pub icache_e: CacheShape,
    /// Data-cache geometry of performance cores.
    pub dcache_p: CacheShape,
    /// Data read buffer of the efficiency core.
    pub drb_e: CacheShape,
}

/// A named entry of the built-in registry.
type BuiltinEntry = (&'static str, fn() -> PlatformDesc);

/// The built-in registry, name → constructor.
const BUILTINS: &[BuiltinEntry] = &[
    ("tc27x", PlatformDesc::tc27x),
    ("tc27x-tdma", PlatformDesc::tc27x_tdma),
    ("ahb2", PlatformDesc::ahb2),
];

impl PlatformDesc {
    /// The default platform: the paper's TC277 (3 cores, per-slave
    /// priority-then-round-robin SRI, Table 2 service latencies). This
    /// is the ONLY place the Table 2 constants 16/21/43 may appear in
    /// code form (`ci.sh lint` greps for strays).
    pub fn tc27x() -> Self {
        let pf = |name| SlaveDesc {
            name,
            present: true,
            prefetch: true,
            code: true,
            data: true,
            service_sequential: 12,
            service: 16,
            writeback_service: 16,
            arbitration: Arbitration::PriorityRoundRobin,
        };
        PlatformDesc {
            name: "tc27x",
            cores: 3,
            app_core: 1,
            load_core: 2,
            master_priority: [0; MAX_CORES],
            fetch_prefetch_hide: 6,
            data_hide: 1,
            slaves: [
                pf("pf0"),
                pf("pf1"),
                SlaveDesc {
                    name: "dfl",
                    present: true,
                    prefetch: false,
                    code: false,
                    data: true,
                    service_sequential: 43,
                    service: 43,
                    writeback_service: 43,
                    arbitration: Arbitration::PriorityRoundRobin,
                },
                SlaveDesc {
                    name: "lmu",
                    present: true,
                    prefetch: false,
                    code: true,
                    data: true,
                    service_sequential: 11,
                    service: 11,
                    writeback_service: 10,
                    arbitration: Arbitration::PriorityRoundRobin,
                },
            ],
            icache_p: CacheShape {
                size_bytes: 16 << 10,
                ways: 2,
            },
            icache_e: CacheShape {
                size_bytes: 8 << 10,
                ways: 2,
            },
            dcache_p: CacheShape {
                size_bytes: 8 << 10,
                ways: 2,
            },
            drb_e: CacheShape {
                size_bytes: 32,
                ways: 1,
            },
        }
    }

    /// TC27x silicon with every SRI slave port arbitrated TDMA instead
    /// of round-robin: one slot per core, each slot exactly covering the
    /// slave's longest transaction. Fully time composable — contenders
    /// cannot delay a grant — at the cost of slot-alignment waits that
    /// are paid even in isolation.
    pub fn tc27x_tdma() -> Self {
        let mut p = PlatformDesc::tc27x();
        p.name = "tc27x-tdma";
        for slave in &mut p.slaves {
            slave.arbitration = Arbitration::Tdma {
                slot_len: slave.max_service(),
            };
        }
        p
    }

    /// A dual-core AHB-lite microcontroller in the RP2040 mould: two
    /// symmetric cores, an XIP flash port and a single SRAM port behind
    /// fixed-priority bus arbiters (core 0, the analysed core, outranks
    /// core 1 — the BUSPRIO-style configuration of the related RP2040
    /// bus-fairness experiments). The pf1/dfl slots are absent.
    pub fn ahb2() -> Self {
        let sram_like = CacheShape {
            size_bytes: 32,
            ways: 1,
        };
        PlatformDesc {
            name: "ahb2",
            cores: 2,
            app_core: 0,
            load_core: 1,
            master_priority: [1, 0, 0],
            fetch_prefetch_hide: 0,
            data_hide: 1,
            slaves: [
                SlaveDesc {
                    name: "flash",
                    present: true,
                    prefetch: false,
                    code: true,
                    data: true,
                    service_sequential: 8,
                    service: 8,
                    writeback_service: 8,
                    arbitration: Arbitration::FixedPriority,
                },
                SlaveDesc::absent("pf1"),
                SlaveDesc::absent("dfl"),
                SlaveDesc {
                    name: "sram",
                    present: true,
                    prefetch: false,
                    code: true,
                    data: true,
                    service_sequential: 2,
                    service: 2,
                    writeback_service: 2,
                    arbitration: Arbitration::FixedPriority,
                },
            ],
            // Both cores are the same kind: give the "efficiency" and
            // "performance" slots identical geometries (an XIP cache in
            // front of flash, a single-line read buffer for data).
            icache_p: CacheShape {
                size_bytes: 16 << 10,
                ways: 2,
            },
            icache_e: CacheShape {
                size_bytes: 16 << 10,
                ways: 2,
            },
            dcache_p: sram_like,
            drb_e: sram_like,
        }
    }

    /// Looks up a built-in profile by registry name.
    pub fn builtin(name: &str) -> Option<PlatformDesc> {
        BUILTINS
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, make)| make())
    }

    /// The registry names, in a stable order (for `--platform` errors).
    pub fn names() -> Vec<&'static str> {
        BUILTINS.iter().map(|(n, _)| *n).collect()
    }

    /// Whether this description is the default platform (the paper's
    /// TC27x). Default-platform fingerprints are *not* folded into job
    /// keys and store identities, so every key minted before platforms
    /// existed stays valid.
    pub fn is_default(&self) -> bool {
        self == default_platform()
    }

    /// The slave in slot `slot`.
    pub fn slave(&self, slot: usize) -> &SlaveDesc {
        &self.slaves[slot]
    }

    /// Worst-case cycles one analysed-core access to slot `slot` can be
    /// delayed by contention (or slot alignment, under TDMA) — the
    /// models' `l^{t,o}` charge for a service occupancy of `service`
    /// cycles. See the module docs for the per-policy derivations.
    pub fn contention_charge(&self, slot: usize, service: u32) -> u64 {
        let slave = &self.slaves[slot];
        let service = u64::from(service);
        match slave.arbitration {
            Arbitration::PriorityRoundRobin => service,
            Arbitration::FixedPriority => {
                if self.outranked(self.app_core) {
                    service
                } else {
                    service.saturating_sub(1)
                }
            }
            Arbitration::Tdma { slot_len } => tdma_worst_wait(self.cores, slot_len, service as u32),
        }
    }

    /// Worst-case charge for a dirty miss at slot `slot`: a write-back
    /// burst followed by a line fill. Under round-robin and fixed
    /// priority the pair occupies the slave back-to-back and is charged
    /// as one combined occupancy (Table 2's bracketed 21 on the TC27x);
    /// under TDMA each of the two transactions can independently suffer
    /// the worst slot alignment.
    pub fn dirty_charge(&self, slot: usize) -> u64 {
        let slave = &self.slaves[slot];
        match slave.arbitration {
            Arbitration::Tdma { .. } => {
                self.contention_charge(slot, slave.writeback_service)
                    + self.contention_charge(slot, slave.service)
            }
            _ => self.contention_charge(slot, slave.writeback_service + slave.service),
        }
    }

    /// Whether any other active core outranks `core` under fixed
    /// priority (strictly higher class, or equal class and lower index).
    pub fn outranked(&self, core: usize) -> bool {
        let mine = self.master_priority[core];
        (0..self.cores).any(|c| {
            c != core
                && (self.master_priority[c] > mine || (self.master_priority[c] == mine && c < core))
        })
    }

    /// FNV-1a fingerprint over every semantic field. Equal descriptions
    /// hash equal on every platform and build; any change to the shape
    /// changes the fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_str("platform-desc/v1");
        h.write_str(self.name);
        h.write_u64(self.cores as u64);
        h.write_u64(self.app_core as u64);
        h.write_u64(self.load_core as u64);
        for p in self.master_priority {
            h.write_u64(u64::from(p));
        }
        h.write_u64(u64::from(self.fetch_prefetch_hide));
        h.write_u64(u64::from(self.data_hide));
        for s in &self.slaves {
            h.write_str(s.name);
            h.write_u64(u64::from(s.present));
            h.write_u64(u64::from(s.prefetch));
            h.write_u64(u64::from(s.code));
            h.write_u64(u64::from(s.data));
            h.write_u64(u64::from(s.service_sequential));
            h.write_u64(u64::from(s.service));
            h.write_u64(u64::from(s.writeback_service));
            match s.arbitration {
                Arbitration::PriorityRoundRobin => h.write_str("prr"),
                Arbitration::FixedPriority => h.write_str("fp"),
                Arbitration::Tdma { slot_len } => {
                    h.write_str("tdma");
                    h.write_u64(u64::from(slot_len));
                }
            }
        }
        for c in [self.icache_p, self.icache_e, self.dcache_p, self.drb_e] {
            h.write_u64(u64::from(c.size_bytes));
            h.write_u64(u64::from(c.ways));
        }
        h.finish()
    }

    /// Checks every structural invariant of the description. Returns
    /// all violations (empty = valid).
    pub fn check(&self) -> Vec<String> {
        let mut issues = Vec::new();
        if self.cores == 0 || self.cores > MAX_CORES {
            issues.push(format!("cores = {} outside 1..={MAX_CORES}", self.cores));
        }
        if self.app_core >= self.cores {
            issues.push(format!("app_core {} not an active core", self.app_core));
        }
        if self.load_core >= self.cores {
            issues.push(format!("load_core {} not an active core", self.load_core));
        }
        if self.cores > 1 && self.app_core == self.load_core {
            issues.push("app_core and load_core must differ".to_string());
        }
        let present = self.slaves.iter().filter(|s| s.present);
        if !present.clone().any(|s| s.code) {
            issues.push("no present slave accepts code fetches".to_string());
        }
        if !present.clone().any(|s| s.data) {
            issues.push("no present slave accepts data accesses".to_string());
        }
        for s in self.slaves.iter().filter(|s| s.present) {
            if s.service == 0 || s.service_sequential == 0 || s.writeback_service == 0 {
                issues.push(format!("slave {}: zero service latency", s.name));
            }
            if s.service_sequential > s.service {
                issues.push(format!(
                    "slave {}: sequential service {} exceeds worst-case service {}",
                    s.name, s.service_sequential, s.service
                ));
            }
            if !s.prefetch && s.service_sequential != s.service {
                issues.push(format!(
                    "slave {}: sequential != service without a prefetcher",
                    s.name
                ));
            }
            if s.prefetch && self.fetch_prefetch_hide >= s.service_sequential {
                issues.push(format!(
                    "slave {}: prefetch hide {} swallows the whole sequential service {}",
                    s.name, self.fetch_prefetch_hide, s.service_sequential
                ));
            }
            if s.data && self.data_hide >= s.service_sequential {
                issues.push(format!(
                    "slave {}: data hide {} swallows the whole service {}",
                    s.name, self.data_hide, s.service_sequential
                ));
            }
            match s.arbitration {
                Arbitration::Tdma { slot_len } => {
                    if slot_len < s.max_service() {
                        issues.push(format!(
                            "slave {}: TDMA slot {} shorter than longest service {}",
                            s.name,
                            slot_len,
                            s.max_service()
                        ));
                    }
                }
                Arbitration::FixedPriority => {
                    // Ties are broken deterministically by core index,
                    // but a fixed-priority port with duplicate classes
                    // is almost certainly a configuration mistake.
                    for a in 0..self.cores {
                        for b in (a + 1)..self.cores {
                            if self.master_priority[a] == self.master_priority[b] {
                                issues.push(format!(
                                    "slave {}: fixed priority with equal classes on cores {a}/{b}",
                                    s.name
                                ));
                            }
                        }
                    }
                }
                Arbitration::PriorityRoundRobin => {}
            }
        }
        issues.dedup();
        issues
    }

    /// [`PlatformDesc::check`] as a result, formatting all violations.
    pub fn validate(&self) -> Result<(), String> {
        let issues = self.check();
        if issues.is_empty() {
            Ok(())
        } else {
            Err(format!("platform {}: {}", self.name, issues.join("; ")))
        }
    }
}

/// The exact worst-case cycles a request of `service` cycles waits for
/// its grant under TDMA with `cores` slots of `slot_len` cycles: it
/// arrives one cycle past the last feasible start in its own slot
/// (`service − 1` cycles of own slot remain) and then waits out the
/// `cores − 1` foreign slots.
pub fn tdma_worst_wait(cores: usize, slot_len: u32, service: u32) -> u64 {
    if cores <= 1 {
        // Sole owner of the schedule: worst case is arriving with one
        // cycle too few left in the slot and wrapping to its next start.
        return u64::from(service.saturating_sub(1));
    }
    (cores as u64 - 1) * u64::from(slot_len) + u64::from(service).saturating_sub(1)
}

/// The default platform (the paper's TC27x), cached for cheap
/// [`PlatformDesc::is_default`] checks.
pub fn default_platform() -> &'static PlatformDesc {
    static DEFAULT: OnceLock<PlatformDesc> = OnceLock::new();
    DEFAULT.get_or_init(PlatformDesc::tc27x)
}

/// Minimal FNV-1a 64 hasher (domain-separated via leading tag strings);
/// kept local so the crate stays a dependency leaf.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        self.write_bytes(&[0xff]);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_resolve_and_validate() {
        for name in PlatformDesc::names() {
            let p = PlatformDesc::builtin(name).expect("registry name resolves");
            assert_eq!(p.name, name);
            assert_eq!(p.validate(), Ok(()), "{name}");
        }
        assert!(PlatformDesc::builtin("nope").is_none());
    }

    #[test]
    fn default_is_tc27x_and_only_tc27x() {
        assert!(PlatformDesc::tc27x().is_default());
        assert!(!PlatformDesc::tc27x_tdma().is_default());
        assert!(!PlatformDesc::ahb2().is_default());
        // A mutated copy of the default is NOT the default, even if it
        // keeps the name.
        let mut p = PlatformDesc::tc27x();
        p.slaves[0].service += 1;
        assert!(!p.is_default());
    }

    #[test]
    fn fingerprints_are_distinct_and_stable() {
        let fps: Vec<u64> = PlatformDesc::names()
            .iter()
            .map(|n| PlatformDesc::builtin(n).unwrap().fingerprint())
            .collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j]);
            }
        }
        assert_eq!(
            PlatformDesc::tc27x().fingerprint(),
            PlatformDesc::tc27x().fingerprint()
        );
    }

    #[test]
    fn tc27x_matches_table2_service_times() {
        let p = PlatformDesc::tc27x();
        assert_eq!(p.slave(0).service, 16);
        assert_eq!(p.slave(0).service_sequential, 12);
        assert_eq!(p.slave(2).service, 43);
        assert_eq!(p.slave(3).service, 11);
        assert_eq!(p.slave(3).writeback_service, 10);
        for slot in 0..SLAVE_SLOTS {
            // Round-robin: the charge is exactly one service occupancy.
            let s = p.slave(slot).service;
            assert_eq!(p.contention_charge(slot, s), u64::from(s));
        }
    }

    #[test]
    fn tdma_worst_wait_formula() {
        // 3 slots of 16: miss our slot by a cycle (15 left over), then
        // two foreign slots of 16 → 32 + 15 = 47.
        assert_eq!(tdma_worst_wait(3, 16, 16), 47);
        assert_eq!(tdma_worst_wait(2, 8, 8), 15);
        assert_eq!(tdma_worst_wait(2, 8, 2), 9);
        assert_eq!(tdma_worst_wait(1, 16, 16), 15);
        let p = PlatformDesc::tc27x_tdma();
        assert_eq!(
            p.contention_charge(0, p.slave(0).service),
            tdma_worst_wait(3, 16, 16)
        );
    }

    #[test]
    fn fixed_priority_charge_depends_on_rank() {
        let p = PlatformDesc::ahb2();
        // Core 0 (the analysed core) holds the top class: only blocking.
        assert!(!p.outranked(0));
        assert!(p.outranked(1));
        assert_eq!(p.contention_charge(0, 8), 7);
        let mut low = p.clone();
        low.master_priority = [0, 1, 0];
        assert_eq!(low.contention_charge(0, 8), 8);
    }

    #[test]
    fn validation_catches_bad_shapes() {
        let mut p = PlatformDesc::tc27x();
        p.cores = 0;
        assert!(p.validate().is_err());

        let mut p = PlatformDesc::tc27x_tdma();
        if let Arbitration::Tdma { slot_len } = &mut p.slaves[0].arbitration {
            *slot_len = 3;
        }
        assert!(p.validate().unwrap_err().contains("TDMA slot"));

        let mut p = PlatformDesc::ahb2();
        p.master_priority = [1, 1, 0];
        assert!(p.validate().unwrap_err().contains("equal classes"));

        let mut p = PlatformDesc::tc27x();
        p.slaves[3].service = 0;
        assert!(p.validate().is_err());

        let mut p = PlatformDesc::ahb2();
        for s in &mut p.slaves {
            s.present = false;
        }
        assert!(p.validate().is_err());
    }

    #[test]
    fn absent_slots_are_infeasible() {
        let p = PlatformDesc::ahb2();
        assert!(!p.slave(1).present);
        assert!(!p.slave(2).present);
        assert!(p.slave(0).code && p.slave(3).data);
    }
}
