//! Watchdog-vs-retry interaction: a watchdog expiry is environmental,
//! so a job that times out on attempt 1 and succeeds on attempt 2 must
//! produce **byte-identical** campaign output to a job that never timed
//! out. The deterministic seam is `CampaignConfig::timeout_fault` — a
//! pure `(seed, key, attempt)` plan recording attempts as
//! `JobFailure::TimedOut` without running them, exactly what a real
//! watchdog expiry leaves behind in the journal.

use mbta::{
    job_key, BatchRunner, CampaignConfig, CampaignRunner, ExecEngine, FaultPlan, JobFailure,
    RetryPolicy, SimJob, SimOutcome,
};
use std::path::PathBuf;
use tc27x_sim::{CoreId, DeploymentScenario};
use workloads::{contender, control_loop, LoadLevel};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mbta-watchdog-retry-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn batch() -> Vec<SimJob> {
    let (a, b) = (CoreId(1), CoreId(2));
    let app = control_loop(DeploymentScenario::Scenario1, a, 42);
    let mut jobs = vec![SimJob::Isolation {
        spec: app.clone(),
        core: a,
    }];
    for level in LoadLevel::all() {
        let load = contender(DeploymentScenario::Scenario1, level, b, 7);
        jobs.push(SimJob::Isolation {
            spec: load.clone(),
            core: b,
        });
        jobs.push(SimJob::Corun {
            app: app.clone(),
            app_core: a,
            load,
            load_core: b,
        });
    }
    jobs
}

fn ccnts(results: &[Result<SimOutcome, JobFailure>]) -> Vec<u64> {
    results
        .iter()
        .map(|r| match r.as_ref().expect("job must complete") {
            SimOutcome::Isolation(p) => p.counters().ccnt,
            SimOutcome::Corun(c) => *c,
        })
        .collect()
}

/// A timeout plan that fires on attempt 0 of at least one job in the
/// batch but never exhausts anyone's retry budget.
fn recoverable_timeout_plan() -> FaultPlan {
    let plan = FaultPlan {
        rate_permille: 350,
        seed: 5,
    };
    let keys: Vec<u64> = batch().iter().map(job_key).collect();
    assert!(
        keys.iter().any(|&k| plan.injects(k, 0)),
        "plan must expire at least one first attempt"
    );
    for &k in &keys {
        assert!(
            (0..3).any(|a| !plan.injects(k, a)),
            "every job must have a surviving attempt"
        );
    }
    plan
}

#[test]
fn timeout_then_success_is_byte_identical_to_never_timing_out() {
    let jobs = batch();
    let reference = {
        let engine = ExecEngine::new(2);
        let campaign = CampaignRunner::new(&engine, CampaignConfig::default());
        ccnts(&campaign.run_batch_detailed(&jobs))
    };

    let engine = ExecEngine::new(2);
    let campaign = CampaignRunner::new(
        &engine,
        CampaignConfig {
            timeout_fault: Some(recoverable_timeout_plan()),
            ..CampaignConfig::default()
        },
    );
    let got = ccnts(&campaign.run_batch_detailed(&jobs));
    let stats = campaign.stats();
    assert!(stats.timed_out > 0, "plan never fired");
    assert_eq!(
        stats.retried, stats.timed_out,
        "every expiry retried, nothing else failed"
    );
    assert!(campaign.manifest().is_complete());
    // The heart of the matter: recovered-after-timeout == undisturbed.
    // A timeout retry must NOT fold the attempt into the seed (that
    // would re-measure a sample that was never corrupted).
    assert_eq!(got, reference);
}

#[test]
fn timeouts_and_transient_faults_fold_seeds_independently() {
    // A transient fault DOES reseed. Interleaving timeouts must not
    // shift those reseeds: a campaign with both plans reproduces the
    // timeout-free faulted campaign wherever the fault plan alone
    // decides the final measurement.
    let jobs = batch();
    let fault = FaultPlan {
        rate_permille: 300,
        seed: 11,
    };
    let faulted_only = {
        let engine = ExecEngine::new(2);
        let campaign = CampaignRunner::new(
            &engine,
            CampaignConfig {
                retry: RetryPolicy { max_attempts: 6 },
                fault: Some(fault),
                ..CampaignConfig::default()
            },
        );
        let out = ccnts(&campaign.run_batch_detailed(&jobs));
        assert!(campaign.manifest().is_complete());
        (out, campaign.stats().injected_faults)
    };
    assert!(faulted_only.1 > 0, "fault plan never fired");
    // Same fault plan, plus timeouts — but the timeout plan fires on
    // *attempt numbers*, so to keep the fault draws aligned it must
    // only fire where the fault plan is quiet. Use a plan that fires
    // exclusively on attempts where no fault fires, for keys where
    // that attempt would have succeeded: the easy deterministic case
    // is rate 0 (no interference at all) — and the stronger case in
    // `timeout_then_success_is_byte_identical_to_never_timing_out`
    // already pins same-seed retries. Here we assert the zero-rate
    // plan is a true no-op on a faulted campaign.
    let engine = ExecEngine::new(2);
    let campaign = CampaignRunner::new(
        &engine,
        CampaignConfig {
            retry: RetryPolicy { max_attempts: 6 },
            fault: Some(fault),
            timeout_fault: Some(FaultPlan {
                rate_permille: 0,
                seed: 99,
            }),
            ..CampaignConfig::default()
        },
    );
    let got = ccnts(&campaign.run_batch_detailed(&jobs));
    assert_eq!(got, faulted_only.0);
    assert_eq!(campaign.stats().injected_faults, faulted_only.1);
}

#[test]
fn journaled_timeout_recovery_resumes_byte_identical() {
    // Kill-shaped variant: run 1 records expiries (and any completed
    // jobs) in the journal; a resume without the plan recovers the
    // rest. Merged output must equal an undisturbed journaled run.
    let jobs = batch();
    let reference = {
        let engine = ExecEngine::new(2);
        let campaign = CampaignRunner::new(&engine, CampaignConfig::default());
        ccnts(&campaign.run_batch_detailed(&jobs))
    };
    let path = tmp("resume");
    let always_expire = FaultPlan {
        rate_permille: 1000,
        seed: 3,
    };
    {
        let engine = ExecEngine::new(2);
        let campaign = CampaignRunner::journaled(
            &engine,
            CampaignConfig {
                retry: RetryPolicy { max_attempts: 2 },
                timeout_fault: Some(always_expire),
                ..CampaignConfig::default()
            },
            &path,
        )
        .expect("journal create");
        let results = campaign.run_batch_detailed(&jobs);
        assert!(
            results
                .iter()
                .all(|r| matches!(r, Err(JobFailure::TimedOut { .. }))),
            "every attempt expired"
        );
        let manifest = campaign.manifest();
        assert!(manifest.unrecovered.iter().all(|e| e.kind == "timeout"));
        assert!(manifest.unrecovered.iter().all(|e| e.attempts == 2));
    }
    // The timeout plan — like the watchdog — is not part of the config
    // fingerprint, so the journal opens without it and the jobs rerun.
    let engine = ExecEngine::new(2);
    let (campaign, report) = CampaignRunner::resumed(
        &engine,
        CampaignConfig {
            retry: RetryPolicy { max_attempts: 2 },
            ..CampaignConfig::default()
        },
        &path,
    )
    .expect("resume");
    assert!(report.records >= jobs.len(), "expiries were journaled");
    let got = ccnts(&campaign.run_batch_detailed(&jobs));
    assert_eq!(got, reference);
    assert!(campaign.manifest().is_complete());
    std::fs::remove_file(&path).ok();
}
