//! Property tests for the fault-tolerant evaluation pipeline: 1,000
//! seeded fault-injection trials drive corrupted counter profiles
//! through validation and the budgeted evaluator.
//!
//! Properties checked (per trial):
//!
//! 1. validation and the fallback evaluation never panic — every
//!    outcome is a value, not an unwind;
//! 2. every accepted profile (clean or repaired) satisfies all
//!    platform invariants, i.e. re-checking it reports clean;
//! 3. every strict rejection carries non-empty machine-readable
//!    diagnostics naming at least one invariant;
//! 4. perturbation is deterministic: the same seed yields the same
//!    corrupted profile and fault records.

use contention::evaluate::{BoundSource, EvalOptions, Evaluator};
use contention::{ModelError, Platform, ValidationPolicy, Validator};
use mbta::perturb_profile;
use tc27x_sim::{CoreId, DeploymentScenario};

const TRIALS: u64 = 1_000;

/// One real isolation profile to corrupt, straight from the simulator.
fn base_profile() -> contention::IsolationProfile {
    let spec = workloads::control_loop(DeploymentScenario::Scenario1, CoreId(1), 42);
    mbta::isolation_profile(&spec, CoreId(1)).expect("reference workload simulates")
}

#[test]
fn thousand_seeded_trials_never_panic_and_keep_invariants() {
    let platform = Platform::tc277_reference();
    let base = base_profile();
    let repair = Validator::new(&platform, ValidationPolicy::Repair);
    let strict = Validator::new(&platform, ValidationPolicy::Strict);

    // Budget-1 evaluator: the ILP budget is exhausted immediately, so
    // every trial exercises the fTC fallback path end to end.
    let mut options =
        EvalOptions::for_scenario(mbta::constraints_for(DeploymentScenario::Scenario1));
    options.ilp.node_budget = 1;
    let budgeted = Evaluator::new(&platform, options);
    // Default-budget evaluator for a subset of trials: exercises the
    // exact ILP path on repaired profiles without 1,000 full solves.
    let exact = Evaluator::new(
        &platform,
        EvalOptions::for_scenario(mbta::constraints_for(DeploymentScenario::Scenario1)),
    );

    let mut repaired_trials = 0u64;
    let mut rejected_trials = 0u64;
    let mut total_faults = 0usize;

    for seed in 0..TRIALS {
        let (corrupt, records) = perturb_profile(&base, seed);
        total_faults += records.len();

        // Property 4: determinism.
        let (again, records_again) = perturb_profile(&base, seed);
        assert_eq!(corrupt.counters(), again.counters(), "seed {seed}");
        assert_eq!(records, records_again, "seed {seed}");

        // Property 2: whatever repair accepts re-checks clean.
        let (accepted, report) = repair
            .apply(&corrupt)
            .unwrap_or_else(|e| panic!("seed {seed}: repair policy rejected a profile: {e}"));
        assert!(
            repair.check(&accepted).is_clean(),
            "seed {seed}: accepted profile still violates invariants: {}",
            repair.check(&accepted).detail()
        );
        if report.repaired {
            repaired_trials += 1;
        }

        // Property 3: strict rejections carry diagnostics.
        match strict.apply(&corrupt) {
            Ok((p, r)) => {
                assert!(r.is_clean(), "seed {seed}: strict accepted a dirty profile");
                assert_eq!(p.counters(), corrupt.counters(), "seed {seed}");
            }
            Err(ModelError::InconsistentProfile { task, detail }) => {
                rejected_trials += 1;
                assert!(
                    !detail.is_empty(),
                    "seed {seed}: rejection without diagnostics"
                );
                assert!(
                    detail.contains("invariant="),
                    "seed {seed}: diagnostics name no invariant: {detail}"
                );
                assert_eq!(task, corrupt.name(), "seed {seed}");
            }
            Err(other) => panic!("seed {seed}: unexpected error {other}"),
        }

        // Property 1: the budgeted evaluator absorbs the corruption and
        // degrades to a finite fTC bound — it never panics or errors
        // under the repair policy.
        let evaluated = budgeted
            .bound(&base, &corrupt)
            .unwrap_or_else(|e| panic!("seed {seed}: budgeted evaluation failed: {e}"));
        assert_eq!(evaluated.source, BoundSource::Ftc, "seed {seed}");
        assert!(evaluated.source.is_fallback());

        // Exact ILP path on a sample of trials (every 50th seed).
        if seed % 50 == 0 {
            let ev = exact
                .bound(&base, &corrupt)
                .unwrap_or_else(|e| panic!("seed {seed}: exact evaluation failed: {e}"));
            assert!(
                ev.bound.delta_cycles <= evaluated.bound.delta_cycles,
                "seed {seed}: ILP bound exceeds its fTC fallback"
            );
        }
    }

    // The fault injector must actually stress both policies: across
    // 1,000 trials some corruptions must need repair / rejection.
    assert!(total_faults > 0, "no trial ever recorded a fault");
    assert!(repaired_trials > 0, "no trial ever needed repair");
    assert!(rejected_trials > 0, "no trial was ever strictly rejected");
    assert_eq!(
        repaired_trials, rejected_trials,
        "repair and strict must disagree with clean input on the same trials"
    );
}

#[test]
fn clean_profiles_pass_both_policies_unchanged() {
    let platform = Platform::tc277_reference();
    let base = base_profile();
    for policy in [ValidationPolicy::Repair, ValidationPolicy::Strict] {
        let v = Validator::new(&platform, policy);
        let (p, report) = v.apply(&base).expect("clean profile accepted");
        assert!(report.is_clean());
        assert!(!report.repaired);
        assert_eq!(p.counters(), base.counters());
    }
}
