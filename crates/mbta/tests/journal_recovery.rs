//! Property suite for campaign journal recovery: replay idempotence,
//! torn-trailing-record tolerance, and cross-worker-count resume
//! bit-identity — the guarantees DESIGN.md §4c promises.

use mbta::{
    BatchRunner, CampaignConfig, CampaignRunner, ExecEngine, FaultPlan, JobFailure, RetryPolicy,
    SimJob, SimOutcome,
};
use std::path::PathBuf;
use tc27x_sim::{CoreId, DeploymentScenario};
use workloads::{contender, control_loop, LoadLevel};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mbta-journal-prop-{}-{name}", std::process::id()));
    p
}

/// A representative campaign batch: isolation runs plus co-runs across
/// contender levels and intensities, with deliberate duplicates.
fn campaign_batch() -> Vec<SimJob> {
    let (a, b) = (CoreId(1), CoreId(2));
    let app = control_loop(DeploymentScenario::Scenario1, a, 42);
    let mut jobs = vec![SimJob::Isolation {
        spec: app.clone(),
        core: a,
    }];
    for level in LoadLevel::all() {
        let load = contender(DeploymentScenario::Scenario1, level, b, 7);
        jobs.push(SimJob::Isolation {
            spec: load.clone(),
            core: b,
        });
        jobs.push(SimJob::Corun {
            app: app.clone(),
            app_core: a,
            load,
            load_core: b,
        });
    }
    for seed in [250, 750] {
        let load = contender(DeploymentScenario::Scenario1, LoadLevel::Medium, b, seed);
        jobs.push(SimJob::Corun {
            app: app.clone(),
            app_core: a,
            load,
            load_core: b,
        });
    }
    // Duplicate of the first job: exercises in-batch deduplication.
    jobs.push(SimJob::Isolation { spec: app, core: a });
    jobs
}

fn values(results: &[Result<SimOutcome, JobFailure>]) -> Vec<u64> {
    results
        .iter()
        .map(|r| match r.as_ref().unwrap() {
            SimOutcome::Isolation(p) => p.counters().ccnt,
            SimOutcome::Corun(c) => *c,
        })
        .collect()
}

/// Replay idempotence: resuming a finished journal N times, at varying
/// worker counts, always reproduces the original outcomes without a
/// single re-simulation.
#[test]
fn replayed_campaigns_are_idempotent_across_worker_counts() {
    let path = tmp("idempotent");
    let reference = {
        let engine = ExecEngine::new(4);
        let campaign =
            CampaignRunner::journaled(&engine, CampaignConfig::default(), &path).unwrap();
        values(&campaign.run_batch_detailed(&campaign_batch()))
    };
    // A journal written at --jobs 4 resumes bit-identically at --jobs 1
    // (and any other worker count) — repeatedly.
    for jobs in [1, 2, 4, 1] {
        let engine = ExecEngine::new(jobs);
        let (campaign, report) =
            CampaignRunner::resumed(&engine, CampaignConfig::default(), &path).unwrap();
        assert_eq!(report.truncated_bytes, 0, "jobs = {jobs}");
        let got = values(&campaign.run_batch_detailed(&campaign_batch()));
        assert_eq!(got, reference, "jobs = {jobs}");
        assert_eq!(
            campaign.stats().executed,
            0,
            "jobs = {jobs}: replay must not re-simulate"
        );
        assert_eq!(engine.report().simulations_run, 0, "jobs = {jobs}");
    }
    std::fs::remove_file(&path).ok();
}

/// Torn-write tolerance: for EVERY truncation point inside the final
/// record, resume recovers all preceding records, re-executes only the
/// torn one, and ends byte-identical to the uninterrupted run.
#[test]
fn every_torn_trailing_truncation_point_recovers() {
    let complete = tmp("torn-complete");
    let jobs = campaign_batch();
    let reference = {
        let engine = ExecEngine::new(2);
        let campaign =
            CampaignRunner::journaled(&engine, CampaignConfig::default(), &complete).unwrap();
        values(&campaign.run_batch_detailed(&jobs))
    };
    let full = std::fs::read(&complete).unwrap();
    let last_line_start = full[..full.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|p| p + 1)
        .unwrap();

    // Cut at several points inside the final record, including "just
    // the newline missing" and "only one byte of the record on disk".
    let torn = tmp("torn-cut");
    for cut in [
        full.len() - 1,
        full.len() - 7,
        last_line_start + 17,
        last_line_start + 1,
    ] {
        std::fs::write(&torn, &full[..cut]).unwrap();
        let engine = ExecEngine::new(2);
        let (campaign, report) =
            CampaignRunner::resumed(&engine, CampaignConfig::default(), &torn).unwrap();
        assert!(
            report.truncated_bytes > 0,
            "cut at {cut}: the tear must be reported, never silent"
        );
        let got = values(&campaign.run_batch_detailed(&jobs));
        assert_eq!(got, reference, "cut at {cut}");
        assert!(campaign.manifest().is_complete(), "cut at {cut}");
        // Only the torn job (plus nothing else) was re-executed.
        assert_eq!(campaign.stats().executed, 1, "cut at {cut}");
    }
    std::fs::remove_file(&complete).ok();
    std::fs::remove_file(&torn).ok();
}

/// The resumed journal file itself converges: after recovery and
/// re-execution it replays fully, so a second crash loses nothing.
#[test]
fn recovered_journal_is_again_fully_replayable() {
    let path = tmp("converge");
    let jobs = campaign_batch();
    {
        let engine = ExecEngine::new(2);
        let campaign =
            CampaignRunner::journaled(&engine, CampaignConfig::default(), &path).unwrap();
        campaign.run_batch_detailed(&jobs);
    }
    let full = std::fs::read(&path).unwrap();
    std::fs::write(&path, &full[..full.len() - 11]).unwrap();
    let reference = {
        let engine = ExecEngine::new(2);
        let (campaign, _) =
            CampaignRunner::resumed(&engine, CampaignConfig::default(), &path).unwrap();
        values(&campaign.run_batch_detailed(&jobs))
    };
    // Second resume: everything now comes from disk.
    let engine = ExecEngine::new(2);
    let (campaign, report) =
        CampaignRunner::resumed(&engine, CampaignConfig::default(), &path).unwrap();
    assert_eq!(report.truncated_bytes, 0);
    let got = values(&campaign.run_batch_detailed(&jobs));
    assert_eq!(got, reference);
    assert_eq!(campaign.stats().executed, 0);
    std::fs::remove_file(&path).ok();
}

/// A faulted, retried campaign journals its way to the same final
/// outcomes an uninterrupted faulted campaign produces, and resume
/// replays the retried successes.
#[test]
fn faulted_campaign_resume_matches_uninterrupted_run() {
    let config = CampaignConfig {
        retry: RetryPolicy { max_attempts: 4 },
        fault: Some(FaultPlan {
            rate_permille: 400,
            seed: 11,
        }),
        watchdog_millis: None,
        journal_strict: false,
        timeout_fault: None,
    };
    let jobs = campaign_batch();
    let reference = {
        let engine = ExecEngine::new(2);
        let campaign = CampaignRunner::new(&engine, config);
        let results = campaign.run_batch_detailed(&jobs);
        assert!(campaign.stats().injected_faults > 0, "plan never fired");
        assert!(results.iter().all(Result::is_ok), "seed 11 must recover");
        values(&results)
    };
    let path = tmp("faulted");
    {
        let engine = ExecEngine::new(4);
        let campaign = CampaignRunner::journaled(&engine, config, &path).unwrap();
        assert_eq!(values(&campaign.run_batch_detailed(&jobs)), reference);
    }
    let engine = ExecEngine::new(1);
    let (campaign, _) = CampaignRunner::resumed(&engine, config, &path).unwrap();
    let got = values(&campaign.run_batch_detailed(&jobs));
    assert_eq!(got, reference);
    assert_eq!(campaign.stats().executed, 0, "retried successes replay");
    std::fs::remove_file(&path).ok();
}

/// Interior corruption — a flipped bit before the final record — is
/// refused outright, never silently skipped.
#[test]
fn interior_corruption_refuses_to_resume() {
    let path = tmp("interior");
    {
        let engine = ExecEngine::new(1);
        let campaign =
            CampaignRunner::journaled(&engine, CampaignConfig::default(), &path).unwrap();
        campaign.run_batch_detailed(&campaign_batch());
    }
    let mut bytes = std::fs::read(&path).unwrap();
    let second_line = bytes.iter().position(|&b| b == b'\n').unwrap() + 25;
    bytes[second_line] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let engine = ExecEngine::new(1);
    let err = CampaignRunner::resumed(&engine, CampaignConfig::default(), &path).unwrap_err();
    assert!(
        matches!(err, mbta::JournalError::Corrupt { .. }),
        "expected Corrupt, got {err}"
    );
    std::fs::remove_file(&path).ok();
}
