//! Journal I/O error paths, driven through a fallible [`RecordSink`]
//! shim.
//!
//! PR-3 specified the journal's *corruption* behaviour (torn tails,
//! bad CRCs); these tests pin down its *I/O failure* behaviour: a disk
//! that fills or a file handle that dies mid-campaign must surface as
//! a counted warning (lenient mode) or a clean
//! [`JobFailure::Transient`] (strict mode) — never a panic, and never
//! a silently dropped record.

use mbta::{
    BatchRunner, CampaignConfig, CampaignRunner, ExecEngine, JobFailure, Journal, RecordSink,
    RetryPolicy, SimJob, Telemetry,
};
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tc27x_sim::{CoreId, DeploymentScenario};

/// A sink that forwards to an in-memory buffer until its write budget
/// is exhausted, then fails every call — the shape of a disk filling
/// up mid-campaign.
struct FallibleSink {
    written: Vec<u8>,
    budget: u64,
    writes: Arc<AtomicU64>,
    fail_sync: bool,
}

impl FallibleSink {
    fn new(budget: u64, writes: Arc<AtomicU64>, fail_sync: bool) -> FallibleSink {
        FallibleSink {
            written: Vec::new(),
            budget,
            writes,
            fail_sync,
        }
    }
}

impl RecordSink for FallibleSink {
    fn write_record(&mut self, bytes: &[u8]) -> io::Result<()> {
        let n = self.writes.fetch_add(1, Ordering::SeqCst);
        if n >= self.budget {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "simulated full disk",
            ));
        }
        self.written.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.fail_sync {
            Err(io::Error::other("simulated fsync failure"))
        } else {
            Ok(())
        }
    }
}

fn batch() -> Vec<SimJob> {
    [
        tc27x_sim::DeploymentScenario::Scenario1,
        DeploymentScenario::Scenario2,
        DeploymentScenario::LowTraffic,
    ]
    .into_iter()
    .map(|scenario| SimJob::Isolation {
        spec: workloads::control_loop(scenario, CoreId(1), 42),
        core: CoreId(1),
    })
    .collect()
}

fn config(strict: bool) -> CampaignConfig {
    CampaignConfig {
        retry: RetryPolicy::default(),
        fault: None,
        watchdog_millis: None,
        journal_strict: strict,
        timeout_fault: None,
    }
}

/// Journal whose sink accepts `budget` record writes (the header is
/// written before the budget applies — `with_sink` would fail
/// otherwise, which is exactly the clean-surface behaviour we want on
/// a dead-at-open handle).
fn fallible_journal(budget: u64, writes: &Arc<AtomicU64>, fail_sync: bool) -> Journal {
    // Budget +1: the header consumes the first write.
    let sink = Box::new(FallibleSink::new(budget + 1, Arc::clone(writes), fail_sync));
    Journal::with_sink("fallible.journal", sink, 0xfeed).expect("header write within budget")
}

#[test]
fn dead_handle_at_open_is_a_clean_error_not_a_panic() {
    let writes = Arc::new(AtomicU64::new(0));
    let sink = Box::new(FallibleSink::new(0, Arc::clone(&writes), false));
    let result = Journal::with_sink("dead.journal", sink, 0xfeed);
    assert!(result.is_err(), "header write must fail cleanly");
}

#[test]
fn lenient_mode_counts_errors_warns_once_and_keeps_results() {
    let telemetry = Arc::new(Telemetry::new("journal-errors-lenient"));
    let engine = ExecEngine::new(1).with_telemetry(Arc::clone(&telemetry));
    let writes = Arc::new(AtomicU64::new(0));
    // First record append succeeds, everything after fails.
    let journal = fallible_journal(1, &writes, false);
    let runner = CampaignRunner::with_journal(&engine, config(false), journal);

    let results = runner.run_batch_detailed(&batch());
    assert_eq!(results.len(), 3);
    for r in &results {
        assert!(r.is_ok(), "lenient mode must not fail jobs: {r:?}");
    }
    let stats = runner.stats();
    assert_eq!(
        stats.journal_errors, 2,
        "both post-budget appends must be counted"
    );
    // Deduplicated: one warning code, count = number of failures.
    let warnings = telemetry.warnings();
    assert_eq!(warnings.len(), 1, "{warnings:?}");
    assert_eq!(warnings[0].code, "journal.append_failed");
    assert_eq!(warnings[0].count, 2);
    assert!(warnings[0].message.contains("simulated full disk"));
}

#[test]
fn strict_mode_surfaces_transient_failures_instead_of_dropping() {
    let engine = ExecEngine::new(1);
    let writes = Arc::new(AtomicU64::new(0));
    let journal = fallible_journal(1, &writes, false);
    let runner = CampaignRunner::with_journal(&engine, config(true), journal);

    let results = runner.run_batch_detailed(&batch());
    assert_eq!(results.len(), 3);
    let ok = results.iter().filter(|r| r.is_ok()).count();
    let transient = results
        .iter()
        .filter(|r| matches!(r, Err(JobFailure::Transient { .. })))
        .count();
    assert_eq!(ok, 1, "the journaled job must succeed");
    assert_eq!(
        transient, 2,
        "unjournaled jobs must surface as clean Transient failures: {results:?}"
    );
    if let Some(Err(JobFailure::Transient { detail })) = results.iter().find(|r| r.is_err()) {
        assert!(detail.contains("journal append failed"), "{detail}");
    }
    // The manifest must list them as unrecovered, not pretend success.
    let manifest = runner.manifest();
    assert!(!manifest.is_complete());
    assert_eq!(manifest.unrecovered.len(), 2);
}

#[test]
fn fsync_failure_is_caught_like_a_write_failure() {
    let writes = Arc::new(AtomicU64::new(0));
    // Writes always succeed; sync always fails. The header sync fails
    // too, so construction itself must already surface it.
    let sink = Box::new(FallibleSink::new(u64::MAX, Arc::clone(&writes), true));
    assert!(
        Journal::with_sink("nosync.journal", sink, 0xfeed).is_err(),
        "a failing fsync must not be swallowed at open"
    );
}
