//! The telemetry determinism contract, end to end: for a seeded batch
//! of simulation jobs, the deterministic subset of the rendered JSONL
//! stream is **byte-identical** across worker counts and across the two
//! timing kernels. Only the `det:false` records (kernel statistics,
//! profile) may differ.

use mbta::{ExecEngine, Format, SimJob, Telemetry};
use std::sync::Arc;
use tc27x_sim::rng::SplitMix64;
use tc27x_sim::{CoreId, DeploymentScenario, Engine};
use workloads::{contender, control_loop, LoadLevel};

/// A seeded mixed batch: isolations and co-runs across both deployment
/// scenarios, with duplicates so the memo cache participates.
fn seeded_batch(seed: u64, len: usize) -> Vec<SimJob> {
    let mut rng = SplitMix64::new(seed);
    let scenarios = [DeploymentScenario::Scenario1, DeploymentScenario::Scenario2];
    let levels = LoadLevel::all();
    let mut batch = Vec::with_capacity(len);
    for _ in 0..len {
        let scenario = scenarios[rng.below(2) as usize];
        let level = levels[rng.below(levels.len() as u64) as usize];
        let task_seed = rng.below(4); // small range => in-batch duplicates
        if rng.flip() {
            batch.push(SimJob::Isolation {
                spec: contender(scenario, level, CoreId(2), task_seed),
                core: CoreId(2),
            });
        } else {
            batch.push(SimJob::Corun {
                app: control_loop(scenario, CoreId(1), 42),
                app_core: CoreId(1),
                load: contender(scenario, level, CoreId(2), task_seed),
                load_core: CoreId(2),
            });
        }
    }
    batch
}

/// Runs the batch on a fresh instrumented engine and returns the full
/// JSONL rendering (engine report folded in, as the binaries do).
fn run_instrumented(batch: &[SimJob], jobs: usize, sim_engine: Engine) -> String {
    let telemetry = Arc::new(Telemetry::new("determinism-test"));
    let engine = ExecEngine::new(jobs)
        .with_sim_engine(sim_engine)
        .with_telemetry(Arc::clone(&telemetry));
    let outcomes = engine.run_batch_detailed(batch);
    assert!(outcomes.iter().all(Result::is_ok), "seeded batch must run");
    telemetry.record_engine(&engine.report());
    telemetry.render(Format::Jsonl)
}

/// The deterministic subset: every record that claims `"det":true`.
fn det_lines(jsonl: &str) -> String {
    let mut out = String::new();
    for line in jsonl.lines().filter(|l| l.contains("\"det\":true")) {
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[test]
fn det_stream_is_byte_identical_across_worker_counts() {
    let batch = seeded_batch(0x5eed_1001, 14);
    let reference = run_instrumented(&batch, 1, Engine::Tick);
    for jobs in [2, 4] {
        let got = run_instrumented(&batch, jobs, Engine::Tick);
        assert_eq!(
            det_lines(&reference),
            det_lines(&got),
            "det subset diverged at --jobs {jobs}"
        );
    }
    // Sanity: the deterministic subset is substantial, not vacuous.
    let det = det_lines(&reference);
    assert!(det.contains("\"k\":\"span\""), "spans present: {det}");
    assert!(det.contains("sri."), "SRI metrics present");
    assert!(det.contains("exec.jobs_recorded"), "exec counters present");
}

#[test]
fn det_stream_is_byte_identical_across_timing_kernels() {
    let batch = seeded_batch(0x5eed_2002, 10);
    let tick = run_instrumented(&batch, 2, Engine::Tick);
    let event = run_instrumented(&batch, 2, Engine::Event);
    assert_eq!(
        det_lines(&tick),
        det_lines(&event),
        "det subset diverged between tick and event kernels"
    );
    // The event kernel leaves its mark only in non-deterministic
    // records (fast-forward statistics), which the tick kernel lacks.
    assert!(event.contains("kernel.ff_jumps"));
}

/// Runs the batch with attribution recording on and returns the folded
/// attribution matrix alongside the rendered JSONL stream.
fn run_attributed(
    batch: &[SimJob],
    jobs: usize,
    sim_engine: Engine,
) -> (tc27x_sim::AttributionMatrix, String) {
    let telemetry = Arc::new(Telemetry::new("attribution-test"));
    let engine = ExecEngine::new(jobs)
        .with_sim_engine(sim_engine)
        .with_attribution(true)
        .with_telemetry(Arc::clone(&telemetry));
    let outcomes = engine.run_batch_detailed(batch);
    assert!(outcomes.iter().all(Result::is_ok), "seeded batch must run");
    (telemetry.attribution(), telemetry.render(Format::Jsonl))
}

#[test]
fn attribution_matrix_is_identical_across_workers_and_kernels() {
    let batch = seeded_batch(0x5eed_4004, 12);
    let (reference, jsonl) = run_attributed(&batch, 1, Engine::Tick);
    assert!(
        !reference.is_zero(),
        "seeded co-run batch must record contention"
    );
    assert!(
        jsonl.contains("\"k\":\"matrix\"") && jsonl.contains("attribution.wait"),
        "matrix records present in the stream: {jsonl}"
    );
    for (jobs, kernel) in [(4, Engine::Tick), (1, Engine::Event), (4, Engine::Event)] {
        let (got, _) = run_attributed(&batch, jobs, kernel);
        assert_eq!(
            reference, got,
            "attribution diverged at --jobs {jobs} on {kernel:?}"
        );
    }
}

#[test]
fn attribution_off_records_nothing_and_changes_nothing() {
    let batch = seeded_batch(0x5eed_5005, 8);
    // Same stream name as `run_attributed`, so the two det subsets can
    // only differ in actual records, not in the meta line.
    let telemetry = Arc::new(Telemetry::new("attribution-test"));
    let engine = ExecEngine::new(2).with_telemetry(Arc::clone(&telemetry));
    let outcomes = engine.run_batch_detailed(&batch);
    assert!(outcomes.iter().all(Result::is_ok));
    assert!(telemetry.attribution().is_zero(), "off means zero matrices");
    let jsonl = telemetry.render(Format::Jsonl);
    assert!(
        !jsonl.contains("\"k\":\"matrix\""),
        "no matrix records when attribution is off"
    );
    // Observation-only: the attributed engine's det stream is the bare
    // engine's det stream plus the matrix records, nothing else moves.
    let (_, attributed) = run_attributed(&batch, 2, Engine::Tick);
    let without_matrices: String = det_lines(&attributed)
        .lines()
        .filter(|l| !l.contains("\"k\":\"matrix\""))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(det_lines(&jsonl), without_matrices);
}

#[test]
fn profile_record_is_the_only_home_for_worker_count() {
    let batch = seeded_batch(0x5eed_3003, 6);
    let jsonl = run_instrumented(&batch, 3, Engine::Event);
    let mut saw_profile = false;
    for line in jsonl.lines() {
        if line.contains("\"k\":\"profile\"") {
            saw_profile = true;
            assert!(line.contains("\"det\":false"), "profile must be nondet");
            assert!(line.contains("\"jobs\":3"), "profile carries jobs: {line}");
        } else {
            assert!(
                !line.contains("wall_seconds"),
                "wall clock outside profile: {line}"
            );
        }
    }
    assert!(saw_profile, "profile record missing:\n{jsonl}");
}
