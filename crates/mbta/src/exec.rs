//! The parallel experiment engine: batched simulation jobs over a
//! deterministic thread pool, with memoized isolation profiles.
//!
//! Every evaluation campaign in this workspace decomposes into two job
//! kinds — *isolation runs* (one task alone on a fresh TC277) and
//! *co-runs* (app plus contender). Both are pure functions of their
//! task specs, so:
//!
//! * batches can run on any number of threads and still produce
//!   bit-identical results, because the [`pool`](crate::pool) collects
//!   results by job index;
//! * isolation profiles can be memoized across (and within) batches,
//!   keyed by a stable fingerprint of the task spec, the core and the
//!   platform configuration ([`contention::StableHasher`]). Calibration
//!   probes and repeated panels hit the cache instead of re-simulating.
//!
//! # Examples
//!
//! ```
//! use mbta::{ExecEngine, SimJob};
//! use tc27x_sim::{CoreId, DeploymentScenario};
//! use workloads::control_loop;
//!
//! # fn main() -> Result<(), tc27x_sim::SimError> {
//! let engine = ExecEngine::new(2);
//! let spec = control_loop(DeploymentScenario::Scenario1, CoreId(1), 42);
//! let first = engine.isolation(&spec, CoreId(1))?;
//! let second = engine.isolation(&spec, CoreId(1))?; // served from cache
//! assert_eq!(first.counters(), second.counters());
//! assert_eq!(engine.report().cache_hits, 1);
//! # Ok(())
//! # }
//! ```

use crate::pool;
use crate::runner::{isolation_profile, observed_corun};
use contention::{IsolationProfile, StableHasher};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use tc27x_sim::{CoreId, SimError, TaskSpec};

/// One simulation job for the engine.
#[derive(Clone, Debug)]
pub enum SimJob {
    /// Run a task alone and extract its isolation profile (memoized).
    Isolation {
        /// The task to profile.
        spec: TaskSpec,
        /// The core it runs on.
        core: CoreId,
    },
    /// Run an app against one contender and observe the app's CCNT
    /// (never memoized — co-runs are what experiments vary).
    Corun {
        /// Application task.
        app: TaskSpec,
        /// Application core.
        app_core: CoreId,
        /// Contender task.
        load: TaskSpec,
        /// Contender core.
        load_core: CoreId,
    },
}

/// The result of one [`SimJob`], in batch order.
#[derive(Clone, Debug)]
pub enum SimOutcome {
    /// Profile from an isolation job.
    Isolation(IsolationProfile),
    /// Observed app cycles from a co-run job.
    Corun(u64),
}

impl SimOutcome {
    /// Unwraps an isolation profile.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is a co-run observation.
    pub fn into_profile(self) -> IsolationProfile {
        match self {
            SimOutcome::Isolation(p) => p,
            SimOutcome::Corun(_) => panic!("expected an isolation outcome"),
        }
    }

    /// Unwraps a co-run observation.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is an isolation profile.
    pub fn into_observed(self) -> u64 {
        match self {
            SimOutcome::Corun(c) => c,
            SimOutcome::Isolation(_) => panic!("expected a co-run outcome"),
        }
    }
}

/// Counters and wall-clock of an engine's lifetime, for
/// `BENCH_engine.json`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineReport {
    /// Configured worker threads.
    pub jobs: usize,
    /// Simulations actually executed (cache misses + co-runs).
    pub simulations_run: u64,
    /// Isolation requests served from the memo cache.
    pub cache_hits: u64,
    /// Isolation requests that had to simulate.
    pub cache_misses: u64,
    /// Wall-clock seconds spent inside `run_batch`.
    pub wall_seconds: f64,
}

impl EngineReport {
    /// Cache hit rate over all isolation requests (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Simulations per wall-clock second (0 before any run).
    pub fn runs_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.simulations_run as f64 / self.wall_seconds
        }
    }

    /// Renders the report as a small JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"jobs\": {},\n  \"simulations_run\": {},\n  \"cache_hits\": {},\n  \
             \"cache_misses\": {},\n  \"cache_hit_rate\": {:.4},\n  \"wall_seconds\": {:.6},\n  \
             \"runs_per_sec\": {:.2}\n}}\n",
            self.jobs,
            self.simulations_run,
            self.cache_hits,
            self.cache_misses,
            self.hit_rate(),
            self.wall_seconds,
            self.runs_per_sec()
        )
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the file.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// The parallel experiment engine.
///
/// Construct one per campaign (or one per process) and submit batches;
/// the memo cache and counters live for the engine's lifetime.
pub struct ExecEngine {
    jobs: usize,
    cache: Mutex<HashMap<u64, IsolationProfile>>,
    hits: AtomicU64,
    misses: AtomicU64,
    runs: AtomicU64,
    wall_nanos: AtomicU64,
}

/// Execution plan for one batch entry.
enum Plan {
    /// Already in the memo cache.
    Cached(IsolationProfile),
    /// Must simulate.
    Execute,
    /// Duplicate of an earlier entry in the same batch.
    Alias(usize),
}

impl ExecEngine {
    /// Creates an engine with `jobs` worker threads (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Self {
        ExecEngine {
            jobs: jobs.max(1),
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            wall_nanos: AtomicU64::new(0),
        }
    }

    /// An engine that executes everything inline on the caller's
    /// thread — the reference the determinism tests compare against.
    pub fn sequential() -> Self {
        ExecEngine::new(1)
    }

    /// An engine sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExecEngine::new(n)
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The stable cache key for an isolation run: task spec (name,
    /// segments, ops, objects, activations, seed), core, and a platform
    /// tag so profiles never leak across simulator configurations.
    fn fingerprint(spec: &TaskSpec, core: CoreId) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("tc277/isolation/v1");
        h.write_u8(core.0);
        // `TaskSpec`'s Debug output covers every field recursively and
        // changes whenever the spec's structure does — exactly the
        // invalidation behaviour a memo key needs.
        h.write_str(&format!("{spec:?}"));
        h.finish()
    }

    /// Runs a batch of jobs and returns their outcomes in batch order,
    /// identical for any worker count.
    ///
    /// Isolation jobs are first resolved against the memo cache and
    /// deduplicated within the batch; only the remainder is simulated,
    /// in parallel. If several jobs fail, the error of the
    /// lowest-indexed failing job is returned (again independent of the
    /// worker count).
    ///
    /// # Errors
    ///
    /// Propagates the first (by batch index) link or simulation error.
    pub fn run_batch(&self, batch: &[SimJob]) -> Result<Vec<SimOutcome>, SimError> {
        let t0 = Instant::now();
        let result = self.run_batch_inner(batch);
        self.wall_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    fn run_batch_inner(&self, batch: &[SimJob]) -> Result<Vec<SimOutcome>, SimError> {
        // Phase 1: plan — consult the cache, dedupe within the batch.
        let mut plan = Vec::with_capacity(batch.len());
        let mut first_by_fp: HashMap<u64, usize> = HashMap::new();
        {
            let cache = self.cache.lock().expect("memo cache poisoned");
            for (i, job) in batch.iter().enumerate() {
                match job {
                    SimJob::Isolation { spec, core } => {
                        let fp = Self::fingerprint(spec, *core);
                        if let Some(p) = cache.get(&fp) {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            plan.push(Plan::Cached(p.clone()));
                        } else if let Some(&j) = first_by_fp.get(&fp) {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            plan.push(Plan::Alias(j));
                        } else {
                            self.misses.fetch_add(1, Ordering::Relaxed);
                            first_by_fp.insert(fp, i);
                            plan.push(Plan::Execute);
                        }
                    }
                    SimJob::Corun { .. } => plan.push(Plan::Execute),
                }
            }
        }

        // Phase 2: simulate the remainder on the pool.
        let exec_idx: Vec<usize> = plan
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, Plan::Execute))
            .map(|(i, _)| i)
            .collect();
        self.runs
            .fetch_add(exec_idx.len() as u64, Ordering::Relaxed);
        let executed: Vec<Result<SimOutcome, SimError>> =
            pool::run_indexed(&exec_idx, self.jobs, |_, &i| Self::execute(&batch[i]));

        // Phase 3: merge in batch order; fill the cache; first error
        // (by batch index) wins.
        let mut by_index: HashMap<usize, Result<SimOutcome, SimError>> =
            exec_idx.into_iter().zip(executed).collect();
        let mut outcomes: Vec<SimOutcome> = Vec::with_capacity(batch.len());
        let mut fresh: Vec<(u64, IsolationProfile)> = Vec::new();
        for (i, entry) in plan.iter().enumerate() {
            let outcome = match entry {
                Plan::Cached(p) => SimOutcome::Isolation(p.clone()),
                Plan::Alias(j) => outcomes[*j].clone(),
                Plan::Execute => {
                    let r = by_index
                        .remove(&i)
                        .expect("every planned job has a result")?;
                    if let (SimOutcome::Isolation(p), SimJob::Isolation { spec, core }) =
                        (&r, &batch[i])
                    {
                        fresh.push((Self::fingerprint(spec, *core), p.clone()));
                    }
                    r
                }
            };
            outcomes.push(outcome);
        }
        if !fresh.is_empty() {
            let mut cache = self.cache.lock().expect("memo cache poisoned");
            cache.extend(fresh);
        }
        Ok(outcomes)
    }

    fn execute(job: &SimJob) -> Result<SimOutcome, SimError> {
        match job {
            SimJob::Isolation { spec, core } => {
                Ok(SimOutcome::Isolation(isolation_profile(spec, *core)?))
            }
            SimJob::Corun {
                app,
                app_core,
                load,
                load_core,
            } => Ok(SimOutcome::Corun(observed_corun(
                app, *app_core, load, *load_core,
            )?)),
        }
    }

    /// Memoized single isolation run.
    ///
    /// # Errors
    ///
    /// Propagates link and simulation errors.
    pub fn isolation(&self, spec: &TaskSpec, core: CoreId) -> Result<IsolationProfile, SimError> {
        let mut out = self.run_batch(std::slice::from_ref(&SimJob::Isolation {
            spec: spec.clone(),
            core,
        }))?;
        Ok(out.remove(0).into_profile())
    }

    /// Single co-run observation through the engine (counted in the
    /// report, never cached).
    ///
    /// # Errors
    ///
    /// Propagates link and simulation errors.
    pub fn corun(
        &self,
        app: &TaskSpec,
        app_core: CoreId,
        load: &TaskSpec,
        load_core: CoreId,
    ) -> Result<u64, SimError> {
        let mut out = self.run_batch(std::slice::from_ref(&SimJob::Corun {
            app: app.clone(),
            app_core,
            load: load.clone(),
            load_core,
        }))?;
        Ok(out.remove(0).into_observed())
    }

    /// Number of isolation profiles currently memoized.
    pub fn cached_profiles(&self) -> usize {
        self.cache.lock().expect("memo cache poisoned").len()
    }

    /// Drops every memoized profile (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.lock().expect("memo cache poisoned").clear();
    }

    /// Snapshot of the engine's counters.
    pub fn report(&self) -> EngineReport {
        EngineReport {
            jobs: self.jobs,
            simulations_run: self.runs.load(Ordering::Relaxed),
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            wall_seconds: self.wall_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc27x_sim::DeploymentScenario;
    use workloads::{contender, control_loop, LoadLevel};

    fn app() -> TaskSpec {
        control_loop(DeploymentScenario::Scenario1, CoreId(1), 42)
    }

    fn load(level: LoadLevel) -> TaskSpec {
        contender(DeploymentScenario::Scenario1, level, CoreId(2), 7)
    }

    #[test]
    fn memoized_profile_equals_fresh_profile() {
        let engine = ExecEngine::new(2);
        let fresh = isolation_profile(&app(), CoreId(1)).unwrap();
        let first = engine.isolation(&app(), CoreId(1)).unwrap();
        let second = engine.isolation(&app(), CoreId(1)).unwrap();
        assert_eq!(first.counters(), fresh.counters());
        assert_eq!(second.counters(), fresh.counters());
        assert_eq!(first.ptac(), second.ptac());
        let r = engine.report();
        assert_eq!(r.cache_hits, 1);
        assert_eq!(r.cache_misses, 1);
        assert_eq!(r.simulations_run, 1);
        assert_eq!(engine.cached_profiles(), 1);
    }

    #[test]
    fn fingerprint_distinguishes_spec_core_and_seed() {
        let a = app();
        let mut reseeded = a.clone();
        reseeded.seed ^= 1;
        let base = ExecEngine::fingerprint(&a, CoreId(1));
        assert_eq!(base, ExecEngine::fingerprint(&a.clone(), CoreId(1)));
        assert_ne!(base, ExecEngine::fingerprint(&a, CoreId(2)));
        assert_ne!(base, ExecEngine::fingerprint(&reseeded, CoreId(1)));
    }

    #[test]
    fn batch_outcomes_are_worker_count_invariant() {
        let mk_batch = || -> Vec<SimJob> {
            let mut b = Vec::new();
            for level in LoadLevel::all() {
                b.push(SimJob::Isolation {
                    spec: load(level),
                    core: CoreId(2),
                });
                b.push(SimJob::Corun {
                    app: app(),
                    app_core: CoreId(1),
                    load: load(level),
                    load_core: CoreId(2),
                });
            }
            b
        };
        let reference: Vec<u64> = ExecEngine::sequential()
            .run_batch(&mk_batch())
            .unwrap()
            .into_iter()
            .map(|o| match o {
                SimOutcome::Isolation(p) => p.counters().ccnt,
                SimOutcome::Corun(c) => c,
            })
            .collect();
        for jobs in [2, 4] {
            let got: Vec<u64> = ExecEngine::new(jobs)
                .run_batch(&mk_batch())
                .unwrap()
                .into_iter()
                .map(|o| match o {
                    SimOutcome::Isolation(p) => p.counters().ccnt,
                    SimOutcome::Corun(c) => c,
                })
                .collect();
            assert_eq!(got, reference, "jobs = {jobs}");
        }
    }

    #[test]
    fn in_batch_duplicates_simulate_once() {
        let engine = ExecEngine::new(4);
        let batch = vec![
            SimJob::Isolation {
                spec: app(),
                core: CoreId(1),
            };
            5
        ];
        let out = engine.run_batch(&batch).unwrap();
        assert_eq!(out.len(), 5);
        let ccnt = out[0].clone().into_profile().counters().ccnt;
        for o in &out {
            assert_eq!(o.clone().into_profile().counters().ccnt, ccnt);
        }
        let r = engine.report();
        assert_eq!(r.simulations_run, 1);
        assert_eq!(r.cache_hits, 4);
    }

    #[test]
    fn first_error_by_index_wins() {
        // An unlinkable spec: references an object that does not exist.
        let broken = TaskSpec::new(
            "broken",
            tc27x_sim::Program::build(|b| {
                b.load("missing", tc27x_sim::Pattern::Sequential);
            }),
            tc27x_sim::Placement::new(tc27x_sim::Region::Pflash0, true),
        );
        let engine = ExecEngine::new(4);
        let batch = vec![
            SimJob::Isolation {
                spec: broken.clone(),
                core: CoreId(1),
            },
            SimJob::Isolation {
                spec: app(),
                core: CoreId(1),
            },
        ];
        let seq_err = ExecEngine::sequential()
            .run_batch(&batch)
            .unwrap_err()
            .to_string();
        let par_err = engine.run_batch(&batch).unwrap_err().to_string();
        assert_eq!(seq_err, par_err);
    }

    #[test]
    fn report_rates_are_consistent() {
        let engine = ExecEngine::new(2);
        engine.isolation(&app(), CoreId(1)).unwrap();
        engine.isolation(&app(), CoreId(1)).unwrap();
        let r = engine.report();
        assert!((r.hit_rate() - 0.5).abs() < 1e-9);
        assert!(r.wall_seconds > 0.0);
        assert!(r.runs_per_sec() > 0.0);
        let json = r.to_json();
        assert!(json.contains("\"jobs\": 2"));
        assert!(json.contains("\"cache_hit_rate\": 0.5000"));
    }
}
