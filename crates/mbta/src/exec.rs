//! The parallel experiment engine: batched simulation jobs over a
//! deterministic thread pool, with memoized isolation profiles.
//!
//! Every evaluation campaign in this workspace decomposes into two job
//! kinds — *isolation runs* (one task alone on a fresh TC277) and
//! *co-runs* (app plus contender). Both are pure functions of their
//! task specs, so:
//!
//! * batches can run on any number of threads and still produce
//!   bit-identical results, because the [`pool`](crate::pool) collects
//!   results by job index;
//! * isolation profiles can be memoized across (and within) batches,
//!   keyed by a stable fingerprint of the task spec, the core and the
//!   platform configuration ([`contention::StableHasher`]). Calibration
//!   probes and repeated panels hit the cache instead of re-simulating.
//!
//! # Examples
//!
//! ```
//! use mbta::{ExecEngine, SimJob};
//! use tc27x_sim::{CoreId, DeploymentScenario};
//! use workloads::control_loop;
//!
//! # fn main() -> Result<(), mbta::JobError> {
//! let engine = ExecEngine::new(2);
//! let spec = control_loop(DeploymentScenario::Scenario1, CoreId(1), 42);
//! let first = engine.isolation(&spec, CoreId(1))?;
//! let second = engine.isolation(&spec, CoreId(1))?; // served from cache
//! assert_eq!(first.counters(), second.counters());
//! assert_eq!(engine.report().cache_hits, 1);
//! # Ok(())
//! # }
//! ```

use crate::pool;
use crate::telemetry::Telemetry;
use contention::{IsolationProfile, StableHasher};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;
use tc27x_sim::{CoreId, Engine, SimError, SimStats, TaskSpec};

/// Why one job in a batch failed.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum JobFailure {
    /// The simulation returned an error.
    Sim(SimError),
    /// The job panicked; the payload message is preserved. The panic is
    /// contained to the job — the rest of the batch still runs, and the
    /// engine (including its memo cache) stays usable.
    Panic(String),
    /// A campaign watchdog gave up on the job after `millis` of
    /// wall-clock time. The job is recorded and the campaign degrades
    /// gracefully instead of aborting (see [`crate::CampaignRunner`]).
    TimedOut {
        /// The watchdog limit that expired, in milliseconds.
        millis: u64,
    },
    /// A transient, retryable fault — e.g. a dropped DSU counter read
    /// injected by a campaign fault plan. Distinct from permanent
    /// failures (link errors, exhausted budgets): the campaign retry
    /// policy re-measures these with the attempt folded into the seed.
    Transient {
        /// Human-readable description of the fault.
        detail: String,
    },
}

impl JobFailure {
    /// Whether a bounded campaign retry may recover this failure.
    /// Only [`JobFailure::Transient`] qualifies: simulation errors are
    /// deterministic, a panic indicates a harness bug, and a timed-out
    /// job would time out again within the same watchdog.
    pub fn is_transient(&self) -> bool {
        matches!(self, JobFailure::Transient { .. })
    }
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobFailure::Sim(e) => write!(f, "{e}"),
            JobFailure::Panic(msg) => write!(f, "job panicked: {msg}"),
            JobFailure::TimedOut { millis } => {
                write!(f, "job exceeded the {millis} ms watchdog")
            }
            JobFailure::Transient { detail } => write!(f, "transient fault: {detail}"),
        }
    }
}

impl Error for JobFailure {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JobFailure::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for JobFailure {
    fn from(e: SimError) -> Self {
        JobFailure::Sim(e)
    }
}

/// The first (by batch index) failing job of a batch.
#[derive(Clone, Debug)]
pub struct JobError {
    /// Index of the failing job within the submitted batch.
    pub index: usize,
    /// What went wrong.
    pub cause: JobFailure,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} failed: {}", self.index, self.cause)
    }
}

impl Error for JobError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.cause)
    }
}

/// Renders a panic payload the way the default hook would.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One simulation job for the engine.
#[derive(Clone, Debug)]
pub enum SimJob {
    /// Run a task alone and extract its isolation profile (memoized).
    Isolation {
        /// The task to profile.
        spec: TaskSpec,
        /// The core it runs on.
        core: CoreId,
    },
    /// Run an app against one contender and observe the app's CCNT
    /// (never memoized — co-runs are what experiments vary).
    Corun {
        /// Application task.
        app: TaskSpec,
        /// Application core.
        app_core: CoreId,
        /// Contender task.
        load: TaskSpec,
        /// Contender core.
        load_core: CoreId,
    },
    /// Deliberately panics when executed — a fault-injection hook for
    /// exercising the engine's panic containment. Never cached; shows
    /// up as [`JobFailure::Panic`] at its batch index while the rest of
    /// the batch completes normally.
    Poison,
}

/// The result of one [`SimJob`], in batch order.
#[derive(Clone, Debug, PartialEq)]
pub enum SimOutcome {
    /// Profile from an isolation job.
    Isolation(IsolationProfile),
    /// Observed app cycles from a co-run job.
    Corun(u64),
}

impl SimOutcome {
    /// Unwraps an isolation profile.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is a co-run observation.
    pub fn into_profile(self) -> IsolationProfile {
        match self {
            SimOutcome::Isolation(p) => p,
            SimOutcome::Corun(_) => panic!("expected an isolation outcome"),
        }
    }

    /// Unwraps a co-run observation.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is an isolation profile.
    pub fn into_observed(self) -> u64 {
        match self {
            SimOutcome::Corun(c) => c,
            SimOutcome::Isolation(_) => panic!("expected a co-run outcome"),
        }
    }
}

/// Counters and wall-clock of an engine's lifetime, for
/// `BENCH_engine.json`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineReport {
    /// Configured worker threads.
    pub jobs: usize,
    /// Simulations actually executed (cache misses + co-runs).
    pub simulations_run: u64,
    /// Isolation requests served from the memo cache.
    pub cache_hits: u64,
    /// Isolation requests that had to simulate.
    pub cache_misses: u64,
    /// Wall-clock seconds spent inside `run_batch`.
    pub wall_seconds: f64,
}

impl EngineReport {
    /// Cache hit rate over all isolation requests (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Simulations per wall-clock second (0 before any run).
    pub fn runs_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.simulations_run as f64 / self.wall_seconds
        }
    }

    /// Renders the report as a small JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"jobs\": {},\n  \"simulations_run\": {},\n  \"cache_hits\": {},\n  \
             \"cache_misses\": {},\n  \"cache_hit_rate\": {:.4},\n  \"wall_seconds\": {:.6},\n  \
             \"runs_per_sec\": {:.2}\n}}\n",
            self.jobs,
            self.simulations_run,
            self.cache_hits,
            self.cache_misses,
            self.hit_rate(),
            self.wall_seconds,
            self.runs_per_sec()
        )
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the file.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// The parallel experiment engine.
///
/// Construct one per campaign (or one per process) and submit batches;
/// the memo cache and counters live for the engine's lifetime.
pub struct ExecEngine {
    jobs: usize,
    cycle_budget: Option<u64>,
    sim_engine: Engine,
    block_memo: bool,
    attribution: bool,
    platform: Arc<::platform::PlatformDesc>,
    telemetry: Option<Arc<Telemetry>>,
    cache: Mutex<HashMap<u64, IsolationProfile>>,
    hits: AtomicU64,
    misses: AtomicU64,
    runs: AtomicU64,
    wall_nanos: AtomicU64,
}

/// Execution plan for one batch entry.
enum Plan {
    /// Already in the memo cache.
    Cached(IsolationProfile),
    /// Must simulate.
    Execute,
    /// Duplicate of an earlier entry in the same batch.
    Alias(usize),
}

impl ExecEngine {
    /// Creates an engine with `jobs` worker threads (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Self {
        ExecEngine {
            jobs: jobs.max(1),
            cycle_budget: None,
            sim_engine: Engine::default(),
            block_memo: true,
            attribution: false,
            platform: Arc::new(::platform::default_platform().clone()),
            telemetry: None,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            wall_nanos: AtomicU64::new(0),
        }
    }

    /// Variant with a per-job simulated-cycle budget (builder style):
    /// every job this engine executes aborts with
    /// [`SimError::CycleLimit`] past `limit` cycles. The budget never
    /// changes a successful result — the simulator is deterministic and
    /// the budget only caps how far a run may go — so the memo cache
    /// stays valid across budgets.
    #[must_use]
    pub fn with_cycle_budget(mut self, limit: Option<u64>) -> Self {
        self.cycle_budget = limit;
        self
    }

    /// The per-job cycle budget, if one is configured.
    pub fn cycle_budget(&self) -> Option<u64> {
        self.cycle_budget
    }

    /// Variant running every job on an explicit simulator timing kernel
    /// (builder style). The two kernels are bit-identical, so switching
    /// never changes a result — memo cache, journal keys and goldens
    /// all stay valid — it only changes how fast jobs execute.
    #[must_use]
    pub fn with_sim_engine(mut self, engine: Engine) -> Self {
        self.sim_engine = engine;
        self
    }

    /// The simulator timing kernel jobs run on.
    pub fn sim_engine(&self) -> Engine {
        self.sim_engine
    }

    /// Variant running every job on an explicit platform description
    /// (builder style). The description decides the simulated machine —
    /// cores, slave topology, service latencies, arbitration — so, unlike
    /// the kernel and memo knobs, switching it *changes results*: memo
    /// fingerprints and journal keys of non-default platforms fold the
    /// description's fingerprint, which keeps profiles and journals from
    /// ever leaking across machines. The default TC27x description keys
    /// exactly as before, so existing journals and stores stay valid.
    #[must_use]
    pub fn with_platform(mut self, desc: ::platform::PlatformDesc) -> Self {
        self.platform = Arc::new(desc);
        self
    }

    /// The platform description jobs run on.
    pub fn platform(&self) -> &::platform::PlatformDesc {
        &self.platform
    }

    /// Variant controlling the event kernel's basic-block memoization
    /// (builder style). Memoized and unmemoized runs are bit-identical
    /// — memo cache, journal keys and goldens all stay valid — so the
    /// switch, like [`with_sim_engine`](Self::with_sim_engine), only
    /// trades wall-clock speed (off exists for debugging and for the
    /// equivalence gates in CI).
    #[must_use]
    pub fn with_block_memo(mut self, on: bool) -> Self {
        self.block_memo = on;
        self
    }

    /// Whether jobs run with basic-block memoization enabled.
    pub fn block_memo(&self) -> bool {
        self.block_memo
    }

    /// Variant recording per-grant contention attribution on every job
    /// (builder style): the simulator charges each SRI wait cycle to
    /// the aggressor core (or the arbitration schedule) that caused it,
    /// and the matrices ride back on [`tc27x_sim::SimStats`] into the
    /// attached telemetry recorder. Attribution is observation-only —
    /// timing, counters, memo cache and journal keys are untouched — so
    /// attributed and bare engines stay bit-identical.
    #[must_use]
    pub fn with_attribution(mut self, on: bool) -> Self {
        self.attribution = on;
        self
    }

    /// Whether jobs record contention attribution.
    pub fn attribution(&self) -> bool {
        self.attribution
    }

    /// Variant with an attached telemetry recorder (builder style):
    /// every executed job is recorded as a span plus simulator
    /// statistics when its batch merges. Recording never changes a
    /// result — it only observes the deterministic execution plan — so
    /// instrumented and bare engines stay bit-identical.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The attached telemetry recorder, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// An engine that executes everything inline on the caller's
    /// thread — the reference the determinism tests compare against.
    pub fn sequential() -> Self {
        ExecEngine::new(1)
    }

    /// An engine sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExecEngine::new(n)
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The stable cache key for an isolation run: task spec (name,
    /// segments, ops, objects, activations, seed), core, and a platform
    /// tag so profiles never leak across simulator configurations.
    /// Non-default platform descriptions additionally fold their own
    /// fingerprint; the default TC27x description keys exactly as it
    /// always has, so journals and stores written before platforms were
    /// pluggable replay unchanged.
    fn fingerprint_on(spec: &TaskSpec, core: CoreId, desc: &::platform::PlatformDesc) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("tc277/isolation/v1");
        if !desc.is_default() {
            h.write_str("platform");
            h.write_u64(desc.fingerprint());
        }
        h.write_u8(core.0);
        // `TaskSpec`'s Debug output covers every field recursively and
        // changes whenever the spec's structure does — exactly the
        // invalidation behaviour a memo key needs.
        h.write_str(&format!("{spec:?}"));
        h.finish()
    }

    /// [`Self::fingerprint_on`] for the default platform description.
    #[cfg(test)]
    fn fingerprint(spec: &TaskSpec, core: CoreId) -> u64 {
        Self::fingerprint_on(spec, core, ::platform::default_platform())
    }

    /// Locks the memo cache, recovering from poisoning: the cache only
    /// ever holds fully-constructed profiles (inserts happen after a
    /// job's result exists), so a panic while the lock was held cannot
    /// have left a torn entry behind.
    fn cache_lock(&self) -> MutexGuard<'_, HashMap<u64, IsolationProfile>> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs a batch of jobs and returns their outcomes in batch order,
    /// identical for any worker count.
    ///
    /// Isolation jobs are first resolved against the memo cache and
    /// deduplicated within the batch; only the remainder is simulated,
    /// in parallel. If several jobs fail, the error of the
    /// lowest-indexed failing job is returned (again independent of the
    /// worker count); every other job still runs to completion, and
    /// successful isolation profiles still land in the memo cache. Use
    /// [`run_batch_detailed`](Self::run_batch_detailed) to see every
    /// per-job result instead of only the first failure.
    ///
    /// # Errors
    ///
    /// Returns the first (by batch index) failing job: a link or
    /// simulation error, or a contained panic.
    pub fn run_batch(&self, batch: &[SimJob]) -> Result<Vec<SimOutcome>, JobError> {
        let detailed = self.run_batch_detailed(batch);
        let mut outcomes = Vec::with_capacity(detailed.len());
        for (index, result) in detailed.into_iter().enumerate() {
            match result {
                Ok(o) => outcomes.push(o),
                Err(cause) => return Err(JobError { index, cause }),
            }
        }
        Ok(outcomes)
    }

    /// Runs a batch and returns one result per job, in batch order. A
    /// failing — even panicking — job never aborts the batch: its slot
    /// carries the [`JobFailure`] and every other job completes
    /// normally.
    pub fn run_batch_detailed(&self, batch: &[SimJob]) -> Vec<Result<SimOutcome, JobFailure>> {
        let t0 = Instant::now();
        let result = self.run_batch_inner(batch);
        self.wall_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    fn run_batch_inner(&self, batch: &[SimJob]) -> Vec<Result<SimOutcome, JobFailure>> {
        // Phase 1: plan — consult the cache, dedupe within the batch.
        let mut plan = Vec::with_capacity(batch.len());
        let mut first_by_fp: HashMap<u64, usize> = HashMap::new();
        {
            let cache = self.cache_lock();
            for (i, job) in batch.iter().enumerate() {
                match job {
                    SimJob::Isolation { spec, core } => {
                        let fp = Self::fingerprint_on(spec, *core, &self.platform);
                        if let Some(p) = cache.get(&fp) {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            plan.push(Plan::Cached(p.clone()));
                        } else if let Some(&j) = first_by_fp.get(&fp) {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            plan.push(Plan::Alias(j));
                        } else {
                            self.misses.fetch_add(1, Ordering::Relaxed);
                            first_by_fp.insert(fp, i);
                            plan.push(Plan::Execute);
                        }
                    }
                    SimJob::Corun { .. } | SimJob::Poison => plan.push(Plan::Execute),
                }
            }
        }

        // Phase 2: simulate the remainder on the pool. Each job runs
        // under `catch_unwind`, so a panicking job poisons neither the
        // pool nor the batch — it becomes a `JobFailure::Panic` at its
        // own index. `AssertUnwindSafe` is sound here: the closure only
        // captures `&batch`, which the unwinding job cannot have
        // mutated.
        let exec_idx: Vec<usize> = plan
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, Plan::Execute))
            .map(|(i, _)| i)
            .collect();
        self.runs
            .fetch_add(exec_idx.len() as u64, Ordering::Relaxed);
        let executed: Vec<(Result<SimOutcome, JobFailure>, Option<SimStats>)> =
            pool::run_indexed(&exec_idx, self.jobs, |_, &i| {
                panic::catch_unwind(AssertUnwindSafe(|| self.execute_job(&batch[i])))
                    .unwrap_or_else(|payload| {
                        (Err(JobFailure::Panic(panic_message(payload))), None)
                    })
            });

        // Phase 3: merge in batch order; fill the cache from the jobs
        // that succeeded and record executed jobs into the telemetry.
        // Recording happens here — not on the workers — so span and
        // metric updates follow the deterministic plan order.
        let mut by_index: HashMap<usize, (Result<SimOutcome, JobFailure>, Option<SimStats>)> =
            exec_idx.into_iter().zip(executed).collect();
        let mut outcomes: Vec<Result<SimOutcome, JobFailure>> = Vec::with_capacity(batch.len());
        let mut fresh: Vec<(u64, IsolationProfile)> = Vec::new();
        for (i, entry) in plan.iter().enumerate() {
            let outcome = match entry {
                Plan::Cached(p) => Ok(SimOutcome::Isolation(p.clone())),
                Plan::Alias(j) => outcomes[*j].clone(),
                Plan::Execute => {
                    let (r, stats) = by_index.remove(&i).unwrap_or_else(|| {
                        (
                            Err(JobFailure::Panic("planned job produced no result".into())),
                            None,
                        )
                    });
                    if let Some(t) = &self.telemetry {
                        match &r {
                            Ok(outcome) => {
                                let cycles = match outcome {
                                    SimOutcome::Isolation(p) => p.counters().ccnt,
                                    SimOutcome::Corun(c) => *c,
                                };
                                t.record_job(
                                    job_key_on(&batch[i], &self.platform),
                                    &batch[i],
                                    cycles,
                                    stats.as_ref(),
                                );
                            }
                            Err(_) => t.record_job_failure(),
                        }
                    }
                    if let (Ok(SimOutcome::Isolation(p)), SimJob::Isolation { spec, core }) =
                        (&r, &batch[i])
                    {
                        fresh.push((Self::fingerprint_on(spec, *core, &self.platform), p.clone()));
                    }
                    r
                }
            };
            outcomes.push(outcome);
        }
        if !fresh.is_empty() {
            self.cache_lock().extend(fresh);
        }
        outcomes
    }

    fn execute_job(&self, job: &SimJob) -> (Result<SimOutcome, JobFailure>, Option<SimStats>) {
        execute_job_with_stats(
            job,
            self.cycle_budget,
            self.sim_engine,
            self.block_memo,
            self.attribution,
            &self.platform,
        )
    }

    /// Memoized single isolation run.
    ///
    /// # Errors
    ///
    /// Propagates link and simulation errors (as the failing job).
    pub fn isolation(&self, spec: &TaskSpec, core: CoreId) -> Result<IsolationProfile, JobError> {
        let mut out = self.run_batch(std::slice::from_ref(&SimJob::Isolation {
            spec: spec.clone(),
            core,
        }))?;
        Ok(out.remove(0).into_profile())
    }

    /// Single co-run observation through the engine (counted in the
    /// report, never cached).
    ///
    /// # Errors
    ///
    /// Propagates link and simulation errors (as the failing job).
    pub fn corun(
        &self,
        app: &TaskSpec,
        app_core: CoreId,
        load: &TaskSpec,
        load_core: CoreId,
    ) -> Result<u64, JobError> {
        let mut out = self.run_batch(std::slice::from_ref(&SimJob::Corun {
            app: app.clone(),
            app_core,
            load: load.clone(),
            load_core,
        }))?;
        Ok(out.remove(0).into_observed())
    }

    /// Number of isolation profiles currently memoized.
    pub fn cached_profiles(&self) -> usize {
        self.cache_lock().len()
    }

    /// Drops every memoized profile (counters are kept).
    pub fn clear_cache(&self) {
        self.cache_lock().clear();
    }

    /// Snapshot of the engine's counters.
    pub fn report(&self) -> EngineReport {
        EngineReport {
            jobs: self.jobs,
            simulations_run: self.runs.load(Ordering::Relaxed),
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            wall_seconds: self.wall_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }

    /// Inserts an externally obtained isolation profile into the memo
    /// cache under its job's fingerprint. The campaign runner uses this
    /// to feed journal-replayed profiles back into the cache, and the
    /// serve daemon to warm a restarted engine from its persistent
    /// profile store, so recovery serves follow-up model evaluations
    /// without re-simulating. Non-isolation jobs are ignored (co-runs
    /// are never memoized).
    pub fn prime(&self, job: &SimJob, profile: IsolationProfile) {
        if let SimJob::Isolation { spec, core } = job {
            self.cache_lock()
                .insert(Self::fingerprint_on(spec, *core, &self.platform), profile);
        }
    }

    /// [`ExecEngine::prime`] by raw job key (see [`job_key`]): the form
    /// a persistent store can use after a restart, when the profile's
    /// originating `TaskSpec` is no longer in memory.
    pub fn prime_keyed(&self, key: u64, profile: IsolationProfile) {
        self.cache_lock().insert(key, profile);
    }
}

/// Executes one job inline with an optional simulated-cycle budget on
/// an explicit timing kernel — the uncached execution path shared by
/// the engine's workers and the campaign runner's watchdogged threads.
pub(crate) fn execute_job_budgeted(
    job: &SimJob,
    cycle_budget: Option<u64>,
    engine: Engine,
    block_memo: bool,
    desc: &::platform::PlatformDesc,
) -> Result<SimOutcome, JobFailure> {
    // The watchdog path discards the statistics snapshot, so it never
    // pays for attribution recording.
    execute_job_with_stats(job, cycle_budget, engine, block_memo, false, desc).0
}

/// [`execute_job_budgeted`] that also returns the simulator's post-run
/// statistics snapshot for the telemetry layer (`None` on failure).
/// `attribution` switches on the simulator's per-grant contention
/// attribution recorder, whose matrices ride back on the snapshot.
pub(crate) fn execute_job_with_stats(
    job: &SimJob,
    cycle_budget: Option<u64>,
    engine: Engine,
    block_memo: bool,
    attribution: bool,
    desc: &::platform::PlatformDesc,
) -> (Result<SimOutcome, JobFailure>, Option<SimStats>) {
    match job {
        SimJob::Isolation { spec, core } => {
            match crate::runner::isolation_profile_stats(
                spec,
                *core,
                cycle_budget,
                engine,
                block_memo,
                attribution,
                desc,
            ) {
                Ok((p, s)) => (Ok(SimOutcome::Isolation(p)), Some(s)),
                Err(e) => (Err(e.into()), None),
            }
        }
        SimJob::Corun {
            app,
            app_core,
            load,
            load_core,
        } => {
            match crate::runner::observed_corun_stats(
                app,
                *app_core,
                load,
                *load_core,
                cycle_budget,
                engine,
                block_memo,
                attribution,
                desc,
            ) {
                Ok((c, s)) => (Ok(SimOutcome::Corun(c)), Some(s)),
                Err(e) => (Err(e.into()), None),
            }
        }
        SimJob::Poison => panic!("deliberately poisoned job"),
    }
}

/// The stable FNV key of one job — the identity under which the
/// campaign journal records its outcome. Isolation jobs reuse the memo
/// cache's fingerprint (spec, core, platform tag); co-runs hash both
/// task/core pairs under their own tag. Equal jobs get equal keys on
/// every platform and in every process, which is what lets a journal
/// written at `--jobs 4` resume at `--jobs 1`.
pub fn job_key(job: &SimJob) -> u64 {
    job_key_on(job, ::platform::default_platform())
}

/// [`job_key`] on an explicit platform description. Non-default
/// descriptions fold their fingerprint into every key, so the same job
/// on two platforms journals (and memoizes) under distinct identities;
/// the default description reproduces [`job_key`] bit for bit, which is
/// what keeps journals written before platforms were pluggable valid.
pub fn job_key_on(job: &SimJob, desc: &::platform::PlatformDesc) -> u64 {
    match job {
        SimJob::Isolation { spec, core } => ExecEngine::fingerprint_on(spec, *core, desc),
        SimJob::Corun {
            app,
            app_core,
            load,
            load_core,
        } => {
            let mut h = StableHasher::new();
            h.write_str("tc277/corun/v1");
            if !desc.is_default() {
                h.write_str("platform");
                h.write_u64(desc.fingerprint());
            }
            h.write_u8(app_core.0);
            h.write_str(&format!("{app:?}"));
            h.write_u8(load_core.0);
            h.write_str(&format!("{load:?}"));
            h.finish()
        }
        SimJob::Poison => {
            let mut h = StableHasher::new();
            h.write_str("tc277/poison/v1");
            h.finish()
        }
    }
}

/// Anything that can run a batch of simulation jobs and return their
/// outcomes in batch order.
///
/// Two implementations exist: [`ExecEngine`] (the in-memory parallel
/// engine) and [`crate::CampaignRunner`] (the crash-safe layer that
/// journals every outcome, replays completed jobs on resume, retries
/// transient faults and watchdogs each job). Experiment drivers —
/// [`crate::figure4_panel_with`], [`crate::table6_block_with`],
/// [`crate::calibrate_with`], the bench sweep — are generic over this
/// trait, so any campaign can be made durable by swapping the runner.
pub trait BatchRunner: Sync {
    /// Runs a batch and returns one result per job, in batch order. A
    /// failing job must not abort the batch: its slot carries the
    /// [`JobFailure`] and every other job completes.
    fn run_batch_detailed(&self, batch: &[SimJob]) -> Vec<Result<SimOutcome, JobFailure>>;

    /// The platform description this runner executes jobs on. The
    /// experiment drivers derive core placement and model tables from
    /// it, so a sweep follows the runner's machine automatically. The
    /// default implementation reports the default TC27x description.
    fn platform(&self) -> &::platform::PlatformDesc {
        ::platform::default_platform()
    }

    /// Runs a batch of jobs and returns their outcomes in batch order.
    ///
    /// # Errors
    ///
    /// Returns the first (by batch index) failing job.
    fn run_batch(&self, batch: &[SimJob]) -> Result<Vec<SimOutcome>, JobError> {
        let detailed = self.run_batch_detailed(batch);
        let mut outcomes = Vec::with_capacity(detailed.len());
        for (index, result) in detailed.into_iter().enumerate() {
            match result {
                Ok(o) => outcomes.push(o),
                Err(cause) => return Err(JobError { index, cause }),
            }
        }
        Ok(outcomes)
    }

    /// Single isolation run through the runner.
    ///
    /// # Errors
    ///
    /// Propagates the failing job.
    fn isolation(&self, spec: &TaskSpec, core: CoreId) -> Result<IsolationProfile, JobError> {
        let mut out = self.run_batch(std::slice::from_ref(&SimJob::Isolation {
            spec: spec.clone(),
            core,
        }))?;
        Ok(out.remove(0).into_profile())
    }

    /// Single co-run observation through the runner.
    ///
    /// # Errors
    ///
    /// Propagates the failing job.
    fn corun(
        &self,
        app: &TaskSpec,
        app_core: CoreId,
        load: &TaskSpec,
        load_core: CoreId,
    ) -> Result<u64, JobError> {
        let mut out = self.run_batch(std::slice::from_ref(&SimJob::Corun {
            app: app.clone(),
            app_core,
            load: load.clone(),
            load_core,
        }))?;
        Ok(out.remove(0).into_observed())
    }
}

impl BatchRunner for ExecEngine {
    fn run_batch_detailed(&self, batch: &[SimJob]) -> Vec<Result<SimOutcome, JobFailure>> {
        ExecEngine::run_batch_detailed(self, batch)
    }

    fn platform(&self) -> &::platform::PlatformDesc {
        ExecEngine::platform(self)
    }

    fn run_batch(&self, batch: &[SimJob]) -> Result<Vec<SimOutcome>, JobError> {
        ExecEngine::run_batch(self, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::isolation_profile;
    use tc27x_sim::DeploymentScenario;
    use workloads::{contender, control_loop, LoadLevel};

    fn app() -> TaskSpec {
        control_loop(DeploymentScenario::Scenario1, CoreId(1), 42)
    }

    fn load(level: LoadLevel) -> TaskSpec {
        contender(DeploymentScenario::Scenario1, level, CoreId(2), 7)
    }

    #[test]
    fn memoized_profile_equals_fresh_profile() {
        let engine = ExecEngine::new(2);
        let fresh = isolation_profile(&app(), CoreId(1)).unwrap();
        let first = engine.isolation(&app(), CoreId(1)).unwrap();
        let second = engine.isolation(&app(), CoreId(1)).unwrap();
        assert_eq!(first.counters(), fresh.counters());
        assert_eq!(second.counters(), fresh.counters());
        assert_eq!(first.ptac(), second.ptac());
        let r = engine.report();
        assert_eq!(r.cache_hits, 1);
        assert_eq!(r.cache_misses, 1);
        assert_eq!(r.simulations_run, 1);
        assert_eq!(engine.cached_profiles(), 1);
    }

    #[test]
    fn fingerprint_distinguishes_spec_core_and_seed() {
        let a = app();
        let mut reseeded = a.clone();
        reseeded.seed ^= 1;
        let base = ExecEngine::fingerprint(&a, CoreId(1));
        assert_eq!(base, ExecEngine::fingerprint(&a.clone(), CoreId(1)));
        assert_ne!(base, ExecEngine::fingerprint(&a, CoreId(2)));
        assert_ne!(base, ExecEngine::fingerprint(&reseeded, CoreId(1)));
    }

    #[test]
    fn batch_outcomes_are_worker_count_invariant() {
        let mk_batch = || -> Vec<SimJob> {
            let mut b = Vec::new();
            for level in LoadLevel::all() {
                b.push(SimJob::Isolation {
                    spec: load(level),
                    core: CoreId(2),
                });
                b.push(SimJob::Corun {
                    app: app(),
                    app_core: CoreId(1),
                    load: load(level),
                    load_core: CoreId(2),
                });
            }
            b
        };
        let reference: Vec<u64> = ExecEngine::sequential()
            .run_batch(&mk_batch())
            .unwrap()
            .into_iter()
            .map(|o| match o {
                SimOutcome::Isolation(p) => p.counters().ccnt,
                SimOutcome::Corun(c) => c,
            })
            .collect();
        for jobs in [2, 4] {
            let got: Vec<u64> = ExecEngine::new(jobs)
                .run_batch(&mk_batch())
                .unwrap()
                .into_iter()
                .map(|o| match o {
                    SimOutcome::Isolation(p) => p.counters().ccnt,
                    SimOutcome::Corun(c) => c,
                })
                .collect();
            assert_eq!(got, reference, "jobs = {jobs}");
        }
    }

    #[test]
    fn in_batch_duplicates_simulate_once() {
        let engine = ExecEngine::new(4);
        let batch = vec![
            SimJob::Isolation {
                spec: app(),
                core: CoreId(1),
            };
            5
        ];
        let out = engine.run_batch(&batch).unwrap();
        assert_eq!(out.len(), 5);
        let ccnt = out[0].clone().into_profile().counters().ccnt;
        for o in &out {
            assert_eq!(o.clone().into_profile().counters().ccnt, ccnt);
        }
        let r = engine.report();
        assert_eq!(r.simulations_run, 1);
        assert_eq!(r.cache_hits, 4);
    }

    #[test]
    fn first_error_by_index_wins() {
        // An unlinkable spec: references an object that does not exist.
        let broken = TaskSpec::new(
            "broken",
            tc27x_sim::Program::build(|b| {
                b.load("missing", tc27x_sim::Pattern::Sequential);
            }),
            tc27x_sim::Placement::new(tc27x_sim::Region::Pflash0, true),
        );
        let engine = ExecEngine::new(4);
        let batch = vec![
            SimJob::Isolation {
                spec: broken.clone(),
                core: CoreId(1),
            },
            SimJob::Isolation {
                spec: app(),
                core: CoreId(1),
            },
        ];
        let seq_err = ExecEngine::sequential().run_batch(&batch).unwrap_err();
        let par_err = engine.run_batch(&batch).unwrap_err();
        assert_eq!(seq_err.index, 0);
        assert_eq!(par_err.index, 0);
        assert_eq!(seq_err.to_string(), par_err.to_string());
        assert!(matches!(seq_err.cause, JobFailure::Sim(_)));
    }

    #[test]
    fn poisoned_job_is_contained_and_indexed() {
        let engine = ExecEngine::new(4);
        let batch = vec![
            SimJob::Isolation {
                spec: app(),
                core: CoreId(1),
            },
            SimJob::Poison,
            SimJob::Corun {
                app: app(),
                app_core: CoreId(1),
                load: load(LoadLevel::High),
                load_core: CoreId(2),
            },
        ];
        // run_batch reports the poisoned job at its exact index…
        let err = engine.run_batch(&batch).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(matches!(err.cause, JobFailure::Panic(_)));
        assert!(err.to_string().contains("job 1 failed"));

        // …while the other jobs in the batch still completed: the
        // detailed view carries their results, and the engine (cache
        // included) remains fully usable afterwards.
        let detailed = engine.run_batch_detailed(&batch);
        assert_eq!(detailed.len(), 3);
        let expected = isolation_profile(&app(), CoreId(1)).unwrap();
        let profile = detailed[0].clone().unwrap().into_profile();
        assert_eq!(profile.counters(), expected.counters());
        assert!(detailed[1].is_err());
        let observed = detailed[2].clone().unwrap().into_observed();
        assert!(observed >= expected.counters().ccnt);

        let after = engine.isolation(&app(), CoreId(1)).unwrap();
        assert_eq!(after.counters(), expected.counters());
        assert!(engine.report().cache_hits >= 1, "cache survived the panic");
    }

    #[test]
    fn panic_while_cache_locked_does_not_wedge_the_engine() {
        // Poison the memo-cache mutex directly: a thread panics while
        // holding the lock. The engine must recover instead of
        // propagating the poison forever.
        let engine = ExecEngine::new(2);
        engine.isolation(&app(), CoreId(1)).unwrap();
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = engine.cache_lock();
            panic!("poison the cache lock");
        }));
        assert!(res.is_err());
        assert_eq!(engine.cached_profiles(), 1);
        engine.isolation(&app(), CoreId(1)).unwrap();
        assert!(engine.report().cache_hits >= 1);
    }

    #[test]
    fn job_keys_are_stable_and_distinguish_jobs() {
        let iso = SimJob::Isolation {
            spec: app(),
            core: CoreId(1),
        };
        let co = SimJob::Corun {
            app: app(),
            app_core: CoreId(1),
            load: load(LoadLevel::High),
            load_core: CoreId(2),
        };
        assert_eq!(job_key(&iso), job_key(&iso.clone()));
        assert_eq!(job_key(&co), job_key(&co.clone()));
        assert_ne!(job_key(&iso), job_key(&co));
        assert_ne!(job_key(&iso), job_key(&SimJob::Poison));
        // The isolation key IS the memo-cache fingerprint.
        assert_eq!(job_key(&iso), ExecEngine::fingerprint(&app(), CoreId(1)));
    }

    #[test]
    fn default_platform_keys_are_unchanged_and_non_default_keys_are_distinct() {
        let iso = SimJob::Isolation {
            spec: app(),
            core: CoreId(1),
        };
        let co = SimJob::Corun {
            app: app(),
            app_core: CoreId(1),
            load: load(LoadLevel::High),
            load_core: CoreId(2),
        };
        // The default description is invisible to the keying: journals
        // and stores written before platforms were pluggable replay.
        let default = ::platform::PlatformDesc::tc27x();
        assert_eq!(job_key(&iso), job_key_on(&iso, &default));
        assert_eq!(job_key(&co), job_key_on(&co, &default));
        // Non-default descriptions key distinctly — per description.
        let tdma = ::platform::PlatformDesc::tc27x_tdma();
        let ahb = ::platform::PlatformDesc::ahb2();
        for job in [&iso, &co] {
            assert_ne!(job_key(job), job_key_on(job, &tdma));
            assert_ne!(job_key(job), job_key_on(job, &ahb));
            assert_ne!(job_key_on(job, &tdma), job_key_on(job, &ahb));
        }
    }

    #[test]
    fn non_default_platform_runs_simulate_that_platform() {
        // A TDMA engine must neither share cache entries with a default
        // engine nor reproduce its timings for a contended co-run.
        let tdma = ExecEngine::sequential().with_platform(::platform::PlatformDesc::tc27x_tdma());
        assert_eq!(tdma.platform().name, "tc27x-tdma");
        let co = SimJob::Corun {
            app: app(),
            app_core: CoreId(1),
            load: load(LoadLevel::High),
            load_core: CoreId(2),
        };
        let default_co = ExecEngine::sequential()
            .run_batch(std::slice::from_ref(&co))
            .unwrap()[0]
            .clone()
            .into_observed();
        let tdma_co = tdma.run_batch(std::slice::from_ref(&co)).unwrap()[0]
            .clone()
            .into_observed();
        assert_ne!(
            default_co, tdma_co,
            "TDMA arbitration must change a contended co-run"
        );
        // Isolation profiles prime under the platform-bound key: a
        // default engine primed with a TDMA job's profile must miss.
        let profile = tdma.isolation(&app(), CoreId(1)).unwrap();
        let fresh = ExecEngine::sequential();
        fresh.prime(
            &SimJob::Isolation {
                spec: app(),
                core: CoreId(1),
            },
            profile,
        );
        assert_eq!(
            fresh.cached_profiles(),
            1,
            "primed under the default engine's own key"
        );
        assert_ne!(
            ExecEngine::fingerprint(&app(), CoreId(1)),
            ExecEngine::fingerprint_on(&app(), CoreId(1), &::platform::PlatformDesc::tc27x_tdma()),
        );
    }

    #[test]
    fn engine_cycle_budget_fails_fast_without_poisoning_the_cache() {
        let starved = ExecEngine::new(2).with_cycle_budget(Some(10));
        assert_eq!(starved.cycle_budget(), Some(10));
        let err = starved.isolation(&app(), CoreId(1)).unwrap_err();
        assert!(matches!(
            err.cause,
            JobFailure::Sim(SimError::CycleLimit { limit: 10 })
        ));
        assert_eq!(starved.cached_profiles(), 0, "failed runs are not cached");
        // A sufficient budget reproduces the unbudgeted profile.
        let free = ExecEngine::sequential();
        let reference = free.isolation(&app(), CoreId(1)).unwrap();
        let roomy = ExecEngine::new(2).with_cycle_budget(Some(u64::MAX));
        let budgeted = roomy.isolation(&app(), CoreId(1)).unwrap();
        assert_eq!(budgeted.counters(), reference.counters());
    }

    #[test]
    fn transient_classification_and_display() {
        assert!(JobFailure::Transient {
            detail: "injected dropped read".into()
        }
        .is_transient());
        assert!(!JobFailure::TimedOut { millis: 50 }.is_transient());
        assert!(!JobFailure::Panic("boom".into()).is_transient());
        assert!(!JobFailure::Sim(SimError::NothingLoaded).is_transient());
        assert_eq!(
            JobFailure::TimedOut { millis: 50 }.to_string(),
            "job exceeded the 50 ms watchdog"
        );
        assert_eq!(
            JobFailure::Transient {
                detail: "injected dropped read".into()
            }
            .to_string(),
            "transient fault: injected dropped read"
        );
    }

    #[test]
    fn primed_profiles_are_served_as_cache_hits() {
        let donor = ExecEngine::sequential();
        let profile = donor.isolation(&app(), CoreId(1)).unwrap();
        let engine = ExecEngine::new(2);
        engine.prime(
            &SimJob::Isolation {
                spec: app(),
                core: CoreId(1),
            },
            profile.clone(),
        );
        assert_eq!(engine.cached_profiles(), 1);
        let served = engine.isolation(&app(), CoreId(1)).unwrap();
        assert_eq!(served.counters(), profile.counters());
        let r = engine.report();
        assert_eq!(r.cache_hits, 1);
        assert_eq!(r.simulations_run, 0, "primed profile skipped simulation");
    }

    #[test]
    fn report_rates_are_consistent() {
        let engine = ExecEngine::new(2);
        engine.isolation(&app(), CoreId(1)).unwrap();
        engine.isolation(&app(), CoreId(1)).unwrap();
        let r = engine.report();
        assert!((r.hit_rate() - 0.5).abs() < 1e-9);
        assert!(r.wall_seconds > 0.0);
        assert!(r.runs_per_sec() > 0.0);
        let json = r.to_json();
        assert!(json.contains("\"jobs\": 2"));
        assert!(json.contains("\"cache_hit_rate\": 0.5000"));
    }
}
