//! The write-ahead result journal: crash-safe persistence for campaign
//! outcomes.
//!
//! Every completed job of a journaled campaign — success or failure —
//! is appended to a plain-text, line-oriented journal file and fsync'd
//! before the campaign proceeds. Each line carries its own FNV-1a
//! checksum, so recovery can tell a good record from a torn or
//! corrupted one without trusting the file system. The format is
//! deliberately human-greppable: certification-oriented interference
//! methodologies ask for an auditable evidence trail for every
//! measurement, and a hex blob would defeat that purpose.
//!
//! # Record format
//!
//! ```text
//! <crc16hex> <body>\n
//! ```
//!
//! where `crc` is the FNV-1a hash of `body` ([`contention::StableHasher`],
//! the same stable hasher that keys the engine's memo cache). Bodies:
//!
//! ```text
//! mbta-journal v1 cfg=<fp16hex>                          header (first line)
//! <key16hex> <attempt> ok corun <cycles>                 co-run success
//! <key16hex> <attempt> ok iso <c…×6> <ptac|-> <name>     isolation success
//! <key16hex> <attempt> fail <kind> <detail…>             failure
//! ```
//!
//! `key` is the job's stable FNV key ([`crate::job_key`]); `cfg` is the
//! campaign configuration fingerprint, so a journal can never silently
//! replay into a campaign with different retry/fault/budget settings.
//!
//! # Recovery guarantees
//!
//! * A record is only considered durable once its full line (including
//!   the trailing newline) is on disk — appends are a single `write`
//!   followed by `fsync`.
//! * On [`Journal::resume`], a **torn trailing record** (no newline, or
//!   a final line whose checksum fails) is truncated away with a
//!   warning counter in the [`RecoveryReport`] — never silently kept.
//! * Corruption anywhere *before* the final record is a hard
//!   [`JournalError::Corrupt`]: an interior flipped bit means the file
//!   is not an append-crash artefact and must not be trusted.

use crate::exec::{JobFailure, SimOutcome};
use contention::{DebugCounters, IsolationProfile, Operation, StableHasher, Target};
use std::error::Error;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal format version tag (first-line magic).
const MAGIC: &str = "mbta-journal v1";

/// Where framed records land: a single durable append.
///
/// Production sinks are files — [`RecordSink::write_record`] maps to
/// `write_all` and [`RecordSink::sync`] to `sync_data`, which together
/// form the write-ahead guarantee the resume path relies on. Tests
/// inject `write`/`fsync` failures through this seam to exercise the
/// journal's error paths without a faulty disk.
pub trait RecordSink: Send {
    /// Appends `bytes` (one framed record, newline included).
    ///
    /// # Errors
    ///
    /// Propagates the underlying write failure.
    fn write_record(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Forces previously appended bytes to durable storage.
    ///
    /// # Errors
    ///
    /// Propagates the underlying sync failure.
    fn sync(&mut self) -> io::Result<()>;
}

impl RecordSink for File {
    fn write_record(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

/// Errors from opening or recovering a journal.
#[derive(Debug)]
#[non_exhaustive]
pub enum JournalError {
    /// An I/O operation failed.
    Io(io::Error),
    /// The file exists but does not start with a valid journal header.
    NotAJournal {
        /// What was wrong.
        detail: String,
    },
    /// The journal was written by a campaign with a different
    /// configuration fingerprint.
    ConfigMismatch {
        /// Fingerprint this campaign expects.
        expected: u64,
        /// Fingerprint found in the journal header.
        found: u64,
    },
    /// A record *before* the final one failed its checksum or grammar —
    /// interior corruption, not an append crash.
    Corrupt {
        /// 1-based line number of the bad record.
        line: usize,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::NotAJournal { detail } => {
                write!(f, "not a campaign journal: {detail}")
            }
            JournalError::ConfigMismatch { expected, found } => write!(
                f,
                "journal was written by a different campaign configuration \
                 (expected cfg={expected:016x}, found cfg={found:016x})"
            ),
            JournalError::Corrupt { line, detail } => {
                write!(f, "journal corrupt at line {line}: {detail}")
            }
        }
    }
}

impl Error for JournalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// What [`Journal::resume`] found on disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact records recovered (header excluded).
    pub records: usize,
    /// Bytes of a torn trailing record that were truncated away
    /// (0 for a cleanly closed journal).
    pub truncated_bytes: u64,
}

/// The replayable outcome of one journaled job attempt.
#[derive(Clone, Debug, PartialEq)]
pub enum JournaledOutcome {
    /// The job completed; the outcome can be replayed verbatim.
    Success(SimOutcome),
    /// The job failed; on resume it is re-executed, and the record
    /// serves the audit trail and the partial-result manifest.
    Failure {
        /// Failure class: `sim`, `panic`, `timeout` or `transient`.
        kind: String,
        /// Human-readable description (display form of the failure).
        detail: String,
    },
}

impl JournaledOutcome {
    /// Whether this is a replayable success.
    pub fn is_success(&self) -> bool {
        matches!(self, JournaledOutcome::Success(_))
    }
}

/// One recovered journal record.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEntry {
    /// The job's stable FNV key ([`crate::job_key`]).
    pub key: u64,
    /// Which retry attempt produced this outcome (0 = first try).
    pub attempt: u32,
    /// The recorded outcome.
    pub outcome: JournaledOutcome,
}

/// An append-only, fsync'd, per-record-checksummed campaign journal.
///
/// Appends are serialised through an internal mutex, so one journal can
/// be shared by all workers of a campaign.
pub struct Journal {
    sink: Mutex<Box<dyn RecordSink>>,
    path: PathBuf,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal").field("path", &self.path).finish()
    }
}

pub(crate) fn crc(body: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write(body.as_bytes());
    h.finish()
}

pub(crate) fn frame(body: &str) -> String {
    format!("{:016x} {body}\n", crc(body))
}

/// Newlines never appear inside a record; escape them so a panic
/// message cannot forge record boundaries.
pub(crate) fn sanitize(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

/// Inverse of [`sanitize`]: unescapes `\\`, `\n` and `\r`. Unknown
/// escapes pass through verbatim (lenient — a record that survived its
/// checksum is trusted).
pub(crate) fn unsanitize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Verifies one line's `<crc16hex> <body>` frame and returns the body.
pub(crate) fn check_frame(line: &str) -> Result<&str, String> {
    let (crc_hex, body) = line
        .split_once(' ')
        .ok_or_else(|| "missing checksum field".to_string())?;
    let stated =
        u64::from_str_radix(crc_hex, 16).map_err(|_| format!("bad checksum field `{crc_hex}`"))?;
    if stated != crc(body) {
        return Err("checksum mismatch".to_string());
    }
    Ok(body)
}

/// Splits raw log text into `(line, newline-terminated)` segments so a
/// missing trailing newline — the signature of a torn append — stays
/// visible to the recovery scan.
pub(crate) fn scan_lines(text: &str) -> Vec<(&str, bool)> {
    let mut segments = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find('\n') {
        segments.push((&rest[..pos], true));
        rest = &rest[pos + 1..];
    }
    if !rest.is_empty() {
        segments.push((rest, false));
    }
    segments
}

impl Journal {
    /// Creates a fresh journal at `path` (truncating any existing
    /// file), writes the header and fsyncs it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn create(path: &Path, config_fp: u64) -> Result<Journal, JournalError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(frame(&format!("{MAGIC} cfg={config_fp:016x}")).as_bytes())?;
        file.sync_data()?;
        Ok(Journal {
            sink: Mutex::new(Box::new(file)),
            path: path.to_path_buf(),
        })
    }

    /// Creates a journal over an arbitrary [`RecordSink`] — the
    /// fallible-writer seam. The header is written (and synced) through
    /// the sink; `label` stands in for the file path in diagnostics.
    ///
    /// # Errors
    ///
    /// Propagates sink write/sync failures from the header append.
    pub fn with_sink(
        label: impl Into<PathBuf>,
        mut sink: Box<dyn RecordSink>,
        config_fp: u64,
    ) -> io::Result<Journal> {
        sink.write_record(frame(&format!("{MAGIC} cfg={config_fp:016x}")).as_bytes())?;
        sink.sync()?;
        Ok(Journal {
            sink: Mutex::new(sink),
            path: label.into(),
        })
    }

    /// Opens an existing journal, verifies its header against
    /// `config_fp`, recovers every intact record and truncates a torn
    /// trailing record (with the byte count reported, never silently).
    /// A missing or empty file is created fresh — resuming a campaign
    /// that never started is the same as starting it.
    ///
    /// # Errors
    ///
    /// [`JournalError::NotAJournal`] on a bad header,
    /// [`JournalError::ConfigMismatch`] when the journal belongs to a
    /// differently configured campaign, [`JournalError::Corrupt`] on
    /// interior corruption, and I/O errors.
    pub fn resume(
        path: &Path,
        config_fp: u64,
    ) -> Result<(Journal, Vec<JournalEntry>, RecoveryReport), JournalError> {
        let mut raw = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        if raw.is_empty() {
            let journal = Journal::create(path, config_fp)?;
            return Ok((journal, Vec::new(), RecoveryReport::default()));
        }

        let text = String::from_utf8_lossy(&raw);
        let mut entries = Vec::new();
        let mut good_len: u64 = 0;
        let mut truncated = 0u64;
        let mut header_seen = false;

        let segments = scan_lines(&text);

        let last = segments.len().saturating_sub(1);
        for (i, (line, terminated)) in segments.iter().enumerate() {
            let line_no = i + 1;
            let is_last = i == last;
            let parsed = Self::check_line(line).and_then(|body| {
                if line_no == 1 {
                    Self::parse_header(body, config_fp).map(|()| None)
                } else {
                    parse_record(body, line_no).map(Some)
                }
            });
            match parsed {
                Ok(entry) if *terminated => {
                    if line_no == 1 {
                        header_seen = true;
                    }
                    good_len += line.len() as u64 + 1;
                    if let Some(e) = entry {
                        entries.push(e);
                    }
                }
                // A complete, checksummed line with no trailing newline
                // cannot happen under single-write appends; treat it as
                // torn anyway — conservative truncation loses one
                // record, continuing could trust a half-written one.
                Ok(_) => {
                    truncated += line.len() as u64;
                }
                Err(e) if is_last && header_seen => {
                    // Torn trailing record: the crash interrupted the
                    // final append. Truncate and warn.
                    truncated += line.len() as u64 + u64::from(*terminated);
                    let _ = e;
                }
                Err(_) if is_last && !*terminated && line_no == 1 => {
                    // The header write itself was interrupted (no
                    // newline ever hit the disk): the campaign never
                    // recorded anything, so start fresh below.
                    truncated += line.len() as u64;
                }
                Err(e) => return Err(e),
            }
        }

        if !header_seen {
            let journal = Journal::create(path, config_fp)?;
            return Ok((
                journal,
                Vec::new(),
                RecoveryReport {
                    records: 0,
                    truncated_bytes: truncated,
                },
            ));
        }

        if truncated > 0 {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(good_len)?;
            f.sync_data()?;
        }

        let file = OpenOptions::new().append(true).open(path)?;
        let report = RecoveryReport {
            records: entries.len(),
            truncated_bytes: truncated,
        };
        Ok((
            Journal {
                sink: Mutex::new(Box::new(file)),
                path: path.to_path_buf(),
            },
            entries,
            report,
        ))
    }

    /// Verifies a line's checksum frame and returns its body.
    fn check_line(line: &str) -> Result<&str, JournalError> {
        check_frame(line).map_err(|detail| JournalError::Corrupt { line: 0, detail })
    }

    fn parse_header(body: &str, config_fp: u64) -> Result<(), JournalError> {
        let rest = body
            .strip_prefix(MAGIC)
            .ok_or_else(|| JournalError::NotAJournal {
                detail: format!("header is `{body}`, expected `{MAGIC} …`"),
            })?;
        let found = rest
            .trim()
            .strip_prefix("cfg=")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| JournalError::NotAJournal {
                detail: "header carries no cfg fingerprint".into(),
            })?;
        if found != config_fp {
            return Err(JournalError::ConfigMismatch {
                expected: config_fp,
                found,
            });
        }
        Ok(())
    }

    /// Appends one job outcome and fsyncs before returning — the
    /// write-ahead guarantee the resume path relies on.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append(
        &self,
        key: u64,
        attempt: u32,
        result: &Result<SimOutcome, JobFailure>,
    ) -> io::Result<()> {
        let body = render_record(key, attempt, result);
        let line = frame(&body);
        let mut sink = self
            .sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        sink.write_record(line.as_bytes())?;
        sink.sync()
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Failure class token for the journal (`fail <kind> …`).
pub(crate) fn failure_kind(f: &JobFailure) -> &'static str {
    match f {
        JobFailure::Sim(_) => "sim",
        JobFailure::Panic(_) => "panic",
        JobFailure::TimedOut { .. } => "timeout",
        JobFailure::Transient { .. } => "transient",
    }
}

pub(crate) fn render_record(
    key: u64,
    attempt: u32,
    result: &Result<SimOutcome, JobFailure>,
) -> String {
    match result {
        Ok(SimOutcome::Corun(cycles)) => {
            format!("{key:016x} {attempt} ok corun {cycles}")
        }
        Ok(SimOutcome::Isolation(p)) => {
            let c = p.counters();
            let ptac = match p.ptac() {
                Some(counts) => {
                    let mut vals = Vec::with_capacity(8);
                    for t in Target::all() {
                        for o in Operation::all() {
                            vals.push(counts.get(t, o).to_string());
                        }
                    }
                    vals.join(",")
                }
                None => "-".to_string(),
            };
            format!(
                "{key:016x} {attempt} ok iso {} {} {} {} {} {} {ptac} {}",
                c.ccnt,
                c.pmem_stall,
                c.dmem_stall,
                c.pcache_miss,
                c.dcache_miss_clean,
                c.dcache_miss_dirty,
                sanitize(p.name())
            )
        }
        Err(f) => format!(
            "{key:016x} {attempt} fail {} {}",
            failure_kind(f),
            sanitize(&f.to_string())
        ),
    }
}

pub(crate) fn parse_record(body: &str, line_no: usize) -> Result<JournalEntry, JournalError> {
    let bad = |detail: String| JournalError::Corrupt {
        line: line_no,
        detail,
    };
    let mut parts = body.splitn(4, ' ');
    let key = parts
        .next()
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| bad("missing or invalid job key".into()))?;
    let attempt: u32 = parts
        .next()
        .and_then(|a| a.parse().ok())
        .ok_or_else(|| bad("missing or invalid attempt count".into()))?;
    let status = parts.next().ok_or_else(|| bad("missing status".into()))?;
    let rest = parts.next().unwrap_or("");
    let outcome = match status {
        "ok" => JournaledOutcome::Success(parse_success(rest, line_no)?),
        "fail" => {
            let (kind, detail) = rest.split_once(' ').unwrap_or((rest, ""));
            if !matches!(kind, "sim" | "panic" | "timeout" | "transient") {
                return Err(bad(format!("unknown failure kind `{kind}`")));
            }
            JournaledOutcome::Failure {
                kind: kind.to_string(),
                detail: detail.to_string(),
            }
        }
        other => return Err(bad(format!("unknown status `{other}`"))),
    };
    Ok(JournalEntry {
        key,
        attempt,
        outcome,
    })
}

fn parse_success(rest: &str, line_no: usize) -> Result<SimOutcome, JournalError> {
    let bad = |detail: String| JournalError::Corrupt {
        line: line_no,
        detail,
    };
    if let Some(cycles) = rest.strip_prefix("corun ") {
        let cycles: u64 = cycles
            .trim()
            .parse()
            .map_err(|_| bad(format!("invalid co-run cycles `{cycles}`")))?;
        return Ok(SimOutcome::Corun(cycles));
    }
    let iso = rest
        .strip_prefix("iso ")
        .ok_or_else(|| bad(format!("unknown success payload `{rest}`")))?;
    let fields: Vec<&str> = iso.splitn(8, ' ').collect();
    if fields.len() != 8 {
        return Err(bad(format!(
            "isolation record has {} fields, expected 8",
            fields.len()
        )));
    }
    let num = |i: usize| -> Result<u64, JournalError> {
        fields[i]
            .parse()
            .map_err(|_| bad(format!("counter field `{}` is not a number", fields[i])))
    };
    let counters = DebugCounters {
        ccnt: num(0)?,
        pmem_stall: num(1)?,
        dmem_stall: num(2)?,
        pcache_miss: num(3)?,
        dcache_miss_clean: num(4)?,
        dcache_miss_dirty: num(5)?,
    };
    let name = fields[7];
    if name.is_empty() {
        return Err(bad("empty task name".into()));
    }
    let mut profile = IsolationProfile::new(name, counters);
    if fields[6] != "-" {
        let vals: Vec<u64> = fields[6]
            .split(',')
            .map(|v| v.parse::<u64>())
            .collect::<Result<_, _>>()
            .map_err(|_| bad(format!("invalid ptac field `{}`", fields[6])))?;
        if vals.len() != 8 {
            return Err(bad(format!(
                "ptac field has {} values, expected 8",
                vals.len()
            )));
        }
        let mut it = vals.iter();
        let mut counts = contention::AccessCounts::new();
        for t in Target::all() {
            for o in Operation::all() {
                counts.set(t, o, *it.next().unwrap_or(&0));
            }
        }
        profile = profile.with_ptac(counts);
    }
    Ok(SimOutcome::Isolation(profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc27x_sim::SimError;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mbta-journal-unit-{}-{name}", std::process::id()));
        p
    }

    fn sample_profile() -> IsolationProfile {
        let mut counts = contention::AccessCounts::new();
        counts.set(Target::Pf0, Operation::Code, 7);
        counts.set(Target::Lmu, Operation::Data, 11);
        IsolationProfile::new(
            "cruise-control",
            DebugCounters {
                ccnt: 846_103,
                pmem_stall: 109_736,
                dmem_stall: 123_840,
                pcache_miss: 18_136,
                dcache_miss_clean: 192,
                dcache_miss_dirty: 0,
            },
        )
        .with_ptac(counts)
    }

    #[test]
    fn records_round_trip_through_render_and_parse() {
        let cases: Vec<Result<SimOutcome, JobFailure>> = vec![
            Ok(SimOutcome::Corun(123_456)),
            Ok(SimOutcome::Isolation(sample_profile())),
            Ok(SimOutcome::Isolation(IsolationProfile::new(
                "plain",
                DebugCounters::default(),
            ))),
            Err(JobFailure::TimedOut { millis: 250 }),
            Err(JobFailure::Transient {
                detail: "injected dropped read (attempt 1)".into(),
            }),
            Err(JobFailure::Panic("multi\nline\npayload".into())),
            Err(JobFailure::Sim(SimError::CycleLimit { limit: 99 })),
        ];
        for (i, case) in cases.iter().enumerate() {
            let body = render_record(0xdead_beef, i as u32, case);
            let entry = parse_record(&body, 2).unwrap();
            assert_eq!(entry.key, 0xdead_beef);
            assert_eq!(entry.attempt, i as u32);
            match (case, &entry.outcome) {
                (Ok(expected), JournaledOutcome::Success(got)) => match (expected, got) {
                    (SimOutcome::Corun(a), SimOutcome::Corun(b)) => assert_eq!(a, b),
                    (SimOutcome::Isolation(a), SimOutcome::Isolation(b)) => {
                        assert_eq!(a, b, "profile round-trip (case {i})");
                    }
                    _ => panic!("outcome kind changed in round-trip"),
                },
                (Err(f), JournaledOutcome::Failure { kind, .. }) => {
                    assert_eq!(kind, failure_kind(f));
                }
                _ => panic!("success/failure flipped in round-trip"),
            }
        }
    }

    #[test]
    fn create_resume_cycle_preserves_every_record() {
        let path = tmp("cycle");
        let journal = Journal::create(&path, 0xc0ffee).unwrap();
        journal.append(1, 0, &Ok(SimOutcome::Corun(10))).unwrap();
        journal
            .append(2, 0, &Ok(SimOutcome::Isolation(sample_profile())))
            .unwrap();
        journal
            .append(3, 1, &Err(JobFailure::TimedOut { millis: 5 }))
            .unwrap();
        drop(journal);

        let (journal, entries, report) = Journal::resume(&path, 0xc0ffee).unwrap();
        assert_eq!(report.records, 3);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(entries.len(), 3);
        assert!(entries[0].outcome.is_success());
        assert!(entries[1].outcome.is_success());
        assert!(!entries[2].outcome.is_success());
        drop(journal);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_trailing_record_is_truncated_and_reported() {
        let path = tmp("torn");
        let journal = Journal::create(&path, 7).unwrap();
        journal.append(1, 0, &Ok(SimOutcome::Corun(10))).unwrap();
        journal.append(2, 0, &Ok(SimOutcome::Corun(20))).unwrap();
        drop(journal);
        // Tear the final record mid-line: drop the last 9 bytes.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 9]).unwrap();

        let (journal, entries, report) = Journal::resume(&path, 7).unwrap();
        assert_eq!(entries.len(), 1, "only the intact record survives");
        assert!(report.truncated_bytes > 0);
        // The file is truncated back to a clean state: appending and
        // resuming again recovers both records.
        journal.append(2, 0, &Ok(SimOutcome::Corun(20))).unwrap();
        drop(journal);
        let (_, entries, report) = Journal::resume(&path, 7).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(report.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interior_corruption_is_a_hard_error() {
        let path = tmp("interior");
        let journal = Journal::create(&path, 7).unwrap();
        journal.append(1, 0, &Ok(SimOutcome::Corun(10))).unwrap();
        journal.append(2, 0, &Ok(SimOutcome::Corun(20))).unwrap();
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the *first* record (not the last line).
        let first_record_offset = bytes.iter().position(|&b| b == b'\n').unwrap() + 20;
        bytes[first_record_offset] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = Journal::resume(&path, 7).unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn config_mismatch_and_foreign_files_are_rejected() {
        let path = tmp("cfg");
        drop(Journal::create(&path, 1).unwrap());
        let err = Journal::resume(&path, 2).unwrap_err();
        assert!(matches!(
            err,
            JournalError::ConfigMismatch {
                expected: 2,
                found: 1
            }
        ));
        std::fs::write(&path, "intensity_permille,ftc_ratio\n0,1.0\n").unwrap();
        let err = Journal::resume(&path, 2).unwrap_err();
        assert!(
            matches!(
                err,
                JournalError::NotAJournal { .. } | JournalError::Corrupt { .. }
            ),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_on_a_missing_file_starts_fresh() {
        let path = tmp("fresh");
        std::fs::remove_file(&path).ok();
        let (journal, entries, report) = Journal::resume(&path, 9).unwrap();
        assert!(entries.is_empty());
        assert_eq!(report, RecoveryReport::default());
        journal.append(1, 0, &Ok(SimOutcome::Corun(1))).unwrap();
        drop(journal);
        let (_, entries, _) = Journal::resume(&path, 9).unwrap();
        assert_eq!(entries.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
