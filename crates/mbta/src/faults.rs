//! Fault injection at the harness level: perturb *model-side* isolation
//! profiles with the simulator's deterministic [`FaultInjector`].
//!
//! [`tc27x_sim::faults`] works on raw simulator counter blocks; the
//! evaluation pipeline works on [`contention::IsolationProfile`]s. This
//! module bridges the two so fault campaigns can run end to end:
//! perturb a profile here, then push it through validation
//! ([`contention::Validator`]) and evaluation
//! ([`contention::Evaluator`]) and check that the pipeline either
//! repairs the damage or rejects the profile with diagnostics — but
//! never panics and never returns an unsound bound silently.

use crate::runner::to_model_counters;
use contention::IsolationProfile;
use tc27x_sim::{FaultInjector, FaultRecord};

/// Converts model-side counter readings back into the simulator's
/// counter type (the inverse of
/// [`to_model_counters`](crate::to_model_counters)).
pub fn to_sim_counters(c: contention::DebugCounters) -> tc27x_sim::DebugCounters {
    tc27x_sim::DebugCounters {
        ccnt: c.ccnt,
        pmem_stall: c.pmem_stall,
        dmem_stall: c.dmem_stall,
        pcache_miss: c.pcache_miss,
        dcache_miss_clean: c.dcache_miss_clean,
        dcache_miss_dirty: c.dcache_miss_dirty,
    }
}

/// Applies one to three seeded counter faults to an isolation profile
/// and reports what changed.
///
/// The perturbed profile keeps its name but **drops its PTAC**: a
/// fault on the debug-counter read leaves any previously captured
/// ground truth unwitnessed, and keeping it would let the ideal model
/// silently mask counter corruption. Equal seeds produce equal
/// perturbations, so campaigns are replayable.
///
/// # Examples
///
/// ```
/// use contention::{DebugCounters, IsolationProfile};
/// use mbta::perturb_profile;
///
/// let clean = IsolationProfile::new("app", DebugCounters {
///     ccnt: 846_103, pmem_stall: 109_736, dmem_stall: 123_840,
///     pcache_miss: 18_136, ..Default::default()
/// });
/// let (noisy, records) = perturb_profile(&clean, 7);
/// assert!(!records.is_empty());
/// let (again, _) = perturb_profile(&clean, 7);
/// assert_eq!(noisy.counters(), again.counters());
/// ```
pub fn perturb_profile(
    profile: &IsolationProfile,
    seed: u64,
) -> (IsolationProfile, Vec<FaultRecord>) {
    let clean = to_sim_counters(*profile.counters());
    let (noisy, records) = FaultInjector::new(seed).perturb(&clean);
    (
        IsolationProfile::new(profile.name().to_string(), to_model_counters(noisy)),
        records,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention::DebugCounters;

    fn sample() -> IsolationProfile {
        IsolationProfile::new(
            "app",
            DebugCounters {
                ccnt: 846_103,
                pmem_stall: 109_736,
                dmem_stall: 123_840,
                pcache_miss: 18_136,
                dcache_miss_clean: 192,
                dcache_miss_dirty: 17,
            },
        )
    }

    #[test]
    fn counter_round_trip_is_exact() {
        let c = *sample().counters();
        assert_eq!(to_model_counters(to_sim_counters(c)), c);
    }

    #[test]
    fn perturbation_is_seed_deterministic() {
        let clean = sample();
        for seed in 0..32 {
            let (a, ra) = perturb_profile(&clean, seed);
            let (b, rb) = perturb_profile(&clean, seed);
            assert_eq!(a.counters(), b.counters(), "seed {seed}");
            assert_eq!(ra, rb, "seed {seed}");
        }
    }

    #[test]
    fn perturbed_profiles_drop_ptac_and_keep_name() {
        let clean = sample().with_ptac(contention::AccessCounts::new());
        let (noisy, _) = perturb_profile(&clean, 3);
        assert_eq!(noisy.name(), "app");
        assert!(noisy.ptac().is_none(), "corrupted reads lose ground truth");
    }
}
