//! Deterministic bounded-retry/backoff policy, shared between the
//! in-process [`crate::CampaignRunner`] and any process-level
//! supervisor built on it (the `dse` shard supervisor).
//!
//! Three pieces, all pure functions of their inputs so retry schedules
//! replay bit-identically:
//!
//! * **classification** ([`classify`]): which [`JobFailure`]s a bounded
//!   retry may recover, and whether the retry should *re-measure*
//!   (attempt folded into the seed — a fresh measurement after a
//!   corrupted one) or *repeat* the identical job (an environmental
//!   failure such as a watchdog expiry on a loaded host: the
//!   measurement itself was never wrong, so re-running it unchanged
//!   keeps the campaign's output byte-identical to a run that never
//!   timed out);
//! * **seed folding** ([`fold_seed`]): the SplitMix64 attempt fold used
//!   since PR 3 for re-measurements;
//! * **backoff** ([`Backoff`]): capped exponential delays with
//!   SplitMix64 equal-jitter, keyed by `(seed, key, attempt)` — what a
//!   supervisor sleeps between restarts of a crashed worker. The
//!   in-process campaign retries immediately (a transient fault there
//!   is an injected counter read, not a crashed process), so only the
//!   process level consumes delays.

use crate::exec::JobFailure;
use tc27x_sim::rng::SplitMix64;

/// Bounded retry policy for transient failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job, the first included (≥ 1). Only failures
    /// classified [`FailureClass::Transient`] consume further attempts.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3 }
    }
}

/// How a bounded retry loop should treat one failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureClass {
    /// Retryable. `reseed` says whether the retry folds the attempt
    /// into the job seed (a fresh measurement) or repeats the job
    /// verbatim (an environmental expiry; the result, once obtained,
    /// must equal the undisturbed one).
    Transient {
        /// Fold the attempt into the seed before re-running.
        reseed: bool,
    },
    /// Never retry: deterministic errors reproduce, panics indicate
    /// harness bugs.
    Permanent,
}

impl FailureClass {
    /// Whether a bounded retry may recover this failure.
    pub fn is_transient(&self) -> bool {
        matches!(self, FailureClass::Transient { .. })
    }
}

/// Classifies a [`JobFailure`] for the retry loop.
///
/// * [`JobFailure::Transient`] — retry with a reseeded measurement
///   (the PR-3 behaviour: a dropped counter read invalidates the
///   sample, so re-measure);
/// * [`JobFailure::TimedOut`] — retry the *identical* job: the
///   watchdog bounds host time, not simulated work, so an expiry says
///   nothing about the measurement. Re-running unchanged is what makes
///   "timed out on attempt 1, succeeded on attempt 2" byte-identical
///   to a run that never timed out;
/// * everything else — permanent.
pub fn classify(failure: &JobFailure) -> FailureClass {
    match failure {
        JobFailure::Transient { .. } => FailureClass::Transient { reseed: true },
        JobFailure::TimedOut { .. } => FailureClass::Transient { reseed: false },
        _ => FailureClass::Permanent,
    }
}

/// Folds a retry attempt into a task seed through SplitMix64 — the
/// deterministic "fresh re-measurement" transform. Attempt 0 is never
/// folded by callers (the original job runs as submitted).
pub fn fold_seed(seed: u64, attempt: u32) -> u64 {
    SplitMix64::new(seed ^ u64::from(attempt)).next_u64()
}

/// Capped exponential backoff with deterministic equal-jitter.
///
/// `delay_millis(key, attempt)` is a pure function: the raw delay
/// doubles per attempt from `base_millis` up to `cap_millis`, and a
/// SplitMix64 stream seeded from `(seed, key, attempt)` draws the
/// jittered delay uniformly from `[raw/2, raw]`. Equal jitter keeps a
/// restart storm spread out while guaranteeing at least half the
/// nominal delay; determinism means a resumed supervisor reproduces
/// the exact schedule the crashed one was executing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backoff {
    /// First-retry delay in milliseconds. 0 disables delays entirely.
    pub base_millis: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub cap_millis: u64,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base_millis: 50,
            cap_millis: 2_000,
            seed: 0,
        }
    }
}

impl Backoff {
    /// The delay before retry number `attempt` (1 = first retry) of the
    /// work item identified by `key`, in milliseconds.
    pub fn delay_millis(&self, key: u64, attempt: u32) -> u64 {
        if self.base_millis == 0 {
            return 0;
        }
        let doublings = attempt.saturating_sub(1).min(32);
        let raw = self
            .base_millis
            .saturating_mul(1u64 << doublings)
            .min(self.cap_millis.max(self.base_millis));
        let mut rng = SplitMix64::new(
            self.seed ^ key ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let half = raw / 2;
        (half + rng.below(raw - half + 1)).min(self.cap_millis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc27x_sim::SimError;

    #[test]
    fn classification_by_failure_kind() {
        assert_eq!(
            classify(&JobFailure::Transient { detail: "x".into() }),
            FailureClass::Transient { reseed: true }
        );
        assert_eq!(
            classify(&JobFailure::TimedOut { millis: 5 }),
            FailureClass::Transient { reseed: false }
        );
        assert_eq!(
            classify(&JobFailure::Panic("boom".into())),
            FailureClass::Permanent
        );
        assert_eq!(
            classify(&JobFailure::Sim(SimError::NothingLoaded)),
            FailureClass::Permanent
        );
        assert!(FailureClass::Transient { reseed: false }.is_transient());
        assert!(!FailureClass::Permanent.is_transient());
    }

    #[test]
    fn backoff_schedule_is_deterministic() {
        let b = Backoff {
            base_millis: 50,
            cap_millis: 2_000,
            seed: 42,
        };
        let schedule: Vec<u64> = (1..=8).map(|a| b.delay_millis(0xfeed, a)).collect();
        let again: Vec<u64> = (1..=8).map(|a| b.delay_millis(0xfeed, a)).collect();
        assert_eq!(schedule, again, "same inputs, same schedule");
        // A different key draws a different jitter stream.
        let other: Vec<u64> = (1..=8).map(|a| b.delay_millis(0xbeef, a)).collect();
        assert_ne!(schedule, other);
        // A different policy seed likewise.
        let reseeded = Backoff { seed: 43, ..b };
        let third: Vec<u64> = (1..=8).map(|a| reseeded.delay_millis(0xfeed, a)).collect();
        assert_ne!(schedule, third);
    }

    #[test]
    fn backoff_respects_base_cap_and_jitter_bounds() {
        let b = Backoff {
            base_millis: 100,
            cap_millis: 1_000,
            seed: 7,
        };
        for key in [0u64, 1, 0xdead_beef] {
            for attempt in 1..=20 {
                let d = b.delay_millis(key, attempt);
                let raw = 100u64
                    .saturating_mul(1 << u64::from(attempt - 1).min(32))
                    .min(1_000);
                assert!(
                    d >= raw / 2,
                    "at least half the nominal delay: {d} < {raw}/2"
                );
                assert!(d <= 1_000, "cap is absolute: {d}");
            }
        }
        // Attempt growth saturates at the cap, never overflows.
        assert!(b.delay_millis(1, u32::MAX) <= 1_000);
        // base 0 disables delays.
        let off = Backoff {
            base_millis: 0,
            ..Backoff::default()
        };
        assert_eq!(off.delay_millis(9, 3), 0);
    }

    #[test]
    fn fold_seed_matches_the_campaign_discipline() {
        // The documented transform, stable across refactors: journals
        // written by older campaigns must replay under it.
        assert_eq!(fold_seed(42, 1), SplitMix64::new(42 ^ 1).next_u64());
        assert_ne!(fold_seed(42, 1), fold_seed(42, 2));
        assert_ne!(fold_seed(42, 1), fold_seed(43, 1));
    }
}
