//! Latency and stall calibration — the campaign that regenerates
//! Table 2 of the paper using only DSU-observable quantities.
//!
//! ## Method
//!
//! *Minimum stall cycles* `cs^{t,o}` come from differential stall-counter
//! readings over microbenchmarks with a known request count: two probes
//! with `n₁ < n₂` requests give `cs = (S₂ − S₁) / (n₂ − n₁)`, immune to
//! one-off warm-up effects (§3.3.2).
//!
//! *Maximum latencies* `l^{t,o}` come from marginal-cost measurements on
//! CCNT, the method the paper describes ("the latency incurred by single
//! accesses to a target as measured by the on-chip cycle counter"):
//! the marginal cost of one extra *non-sequential* access, minus the
//! cost of the same loop iteration against the core-local scratchpad,
//! plus the one overlapped address cycle, equals the end-to-end
//! transaction latency. For code, the bounce probe's stall per
//! iteration minus the sequential stall isolates the non-sequential
//! fetch latency.

use crate::exec::{BatchRunner, ExecEngine, JobError, SimJob};
use contention::{DebugCounters, LatencyTable, Operation, Platform, StallTable, Target};
use tc27x_sim::{CoreId, DataObject, Pattern, Placement, Program, Region, TaskSpec};
use workloads::micro;

/// The calibrated tables (the reproduction of Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Calibration {
    /// Worst-case per-request latencies `l^{t,o}`.
    pub latency: LatencyTable,
    /// Best-case per-request stall cycles `cs^{t,o}`.
    pub stall: StallTable,
    /// LMU dirty-miss end-to-end latency (Table 2's bracketed value).
    pub lmu_dirty_latency: u64,
}

impl Calibration {
    /// Builds a [`Platform`] from the calibrated tables.
    pub fn into_platform(self) -> Platform {
        Platform::from_tables(self.latency, self.stall, self.lmu_dirty_latency)
    }
}

/// Differential over two probe readings: `(r2 - r1) / (n2 - n1)`.
fn differential(r1: u64, r2: u64, n1: u32, n2: u32) -> u64 {
    (r2 - r1) / (n2 - n1) as u64
}

/// The dspr-resident single-access loop whose marginal CCNT cost is the
/// baseline subtracted from shared-memory probes.
fn baseline_probe(core: CoreId, n: u32) -> TaskSpec {
    let prog = Program::build(|b| {
        b.repeat(n, |b| {
            b.load("local", Pattern::Sequential);
        });
    });
    TaskSpec::new("baseline", prog, Placement::pspr(core)).with_object(DataObject::new(
        "local",
        1 << 10,
        Placement::dspr(core),
    ))
}

const CODE_BANKS: [(Target, Region); 3] = [
    (Target::Pf0, Region::Pflash0),
    (Target::Pf1, Region::Pflash1),
    (Target::Lmu, Region::Lmu),
];
const PF_BANKS: [(Target, Region); 2] = [
    (Target::Pf0, Region::Pflash0),
    (Target::Pf1, Region::Pflash1),
];
const WORD_REGIONS: [(Target, Region); 2] =
    [(Target::Lmu, Region::Lmu), (Target::Dfl, Region::Dflash)];

/// Builds the full probe batch, in the fixed order `calibrate_with`
/// consumes it. The LMU/DFLASH word probes appear twice (stall and
/// latency campaigns read different counters of the same run), so an
/// engine serves the second appearance from its memo cache.
fn probe_batch(core: CoreId) -> Vec<SimJob> {
    let mut batch = Vec::new();
    let mut push = |spec: TaskSpec| batch.push(SimJob::Isolation { spec, core });

    for (_, bank) in CODE_BANKS {
        push(micro::code_stream(bank, 64));
        push(micro::code_stream(bank, 320));
        push(micro::code_bounce(bank, 50));
        push(micro::code_bounce(bank, 150));
    }
    for (_, bank) in PF_BANKS {
        push(micro::data_lines(core, bank, 64));
        push(micro::data_lines(core, bank, 320));
    }
    for (_, region) in WORD_REGIONS {
        push(micro::data_words(core, region, 100, false));
        push(micro::data_words(core, region, 400, false));
    }
    push(baseline_probe(core, 200));
    push(baseline_probe(core, 600));
    for (_, bank) in PF_BANKS {
        push(micro::data_skip(core, bank, 400));
        push(micro::data_skip(core, bank, 1200));
    }
    for (_, region) in WORD_REGIONS {
        push(micro::data_words(core, region, 100, false));
        push(micro::data_words(core, region, 400, false));
    }
    push(micro::dirty_stores(core, 600));
    push(micro::dirty_stores(core, 1000));
    batch
}

/// Runs the full calibration campaign on a fresh TC277, sequentially.
///
/// # Errors
///
/// Propagates simulation errors from the probe runs.
///
/// # Examples
///
/// ```
/// use contention::{Operation, Platform, Target};
///
/// # fn main() -> Result<(), mbta::JobError> {
/// let cal = mbta::calibrate()?;
/// // The campaign recovers Table 2 exactly on the reference platform.
/// let reference = Platform::tc277_reference();
/// assert_eq!(cal.stall.get(Target::Pf0, Operation::Code),
///            reference.stall(Target::Pf0, Operation::Code));
/// # Ok(())
/// # }
/// ```
pub fn calibrate() -> Result<Calibration, JobError> {
    calibrate_with(&ExecEngine::sequential())
}

/// [`calibrate`] on a caller-supplied runner: the whole campaign (28
/// probe runs) goes out as one batch, and the repeated LMU/DFLASH word
/// probes are deduplicated by the engine's memo cache. Generic over
/// [`BatchRunner`], so a crash-safe [`crate::CampaignRunner`] drops in.
///
/// # Errors
///
/// Propagates simulation errors from the probe runs.
pub fn calibrate_with<R: BatchRunner + ?Sized>(engine: &R) -> Result<Calibration, JobError> {
    let core = CoreId(1);
    let mut stall = StallTable::new();
    let mut latency = LatencyTable::new();

    let outcomes = engine.run_batch(&probe_batch(core))?;
    let mut readings = outcomes
        .into_iter()
        .map(|o| *o.into_profile().counters())
        .collect::<Vec<DebugCounters>>()
        .into_iter();
    let mut pair = move || {
        let mut one = || {
            readings
                .next()
                .unwrap_or_else(|| unreachable!("probe batch covers every reading"))
        };
        (one(), one())
    };

    // --- code stalls: ΔPMEM_STALL per line over streaming probes,
    //     and code latency: bounce stall per iteration − sequential cs ---
    for (target, _) in CODE_BANKS {
        let (a, b) = pair();
        let cs = differential(a.pmem_stall, b.pmem_stall, 64, 320);
        stall.set(target, Operation::Code, cs);
        let (a, b) = pair();
        let per_iter = differential(a.pmem_stall, b.pmem_stall, 50, 150);
        latency.set(target, Operation::Code, per_iter - cs);
    }

    // --- data stalls ---
    for (target, _) in PF_BANKS {
        let (a, b) = pair();
        stall.set(
            target,
            Operation::Data,
            differential(a.dmem_stall, b.dmem_stall, 64, 320),
        );
    }
    for (target, _) in WORD_REGIONS {
        let (a, b) = pair();
        stall.set(
            target,
            Operation::Data,
            differential(a.dmem_stall, b.dmem_stall, 100, 400),
        );
    }

    // --- data latencies: marginal CCNT − dspr baseline + 1 ---
    let (a, b) = pair();
    let base = differential(a.ccnt, b.ccnt, 200, 600);
    for (target, _) in PF_BANKS {
        let (a, b) = pair();
        let marginal = differential(a.ccnt, b.ccnt, 400, 1200);
        latency.set(target, Operation::Data, marginal - base + 1);
    }
    for (target, _) in WORD_REGIONS {
        let (a, b) = pair();
        let marginal = differential(a.ccnt, b.ccnt, 100, 400);
        latency.set(target, Operation::Data, marginal - base + 1);
    }

    // --- LMU dirty-miss latency ---
    let (a, b) = pair();
    let dirty_marginal = differential(a.ccnt, b.ccnt, 600, 1000);
    let lmu_dirty_latency = dirty_marginal - base + 1;

    Ok(Calibration {
        latency,
        stall,
        lmu_dirty_latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline calibration test: the campaign must reproduce
    /// Table 2 of the paper cell by cell.
    #[test]
    fn calibration_reproduces_table2() {
        let cal = calibrate().unwrap();
        let reference = Platform::tc277_reference();
        for (t, o) in [
            (Target::Pf0, Operation::Code),
            (Target::Pf1, Operation::Code),
            (Target::Lmu, Operation::Code),
            (Target::Pf0, Operation::Data),
            (Target::Pf1, Operation::Data),
            (Target::Lmu, Operation::Data),
            (Target::Dfl, Operation::Data),
        ] {
            assert_eq!(cal.stall.get(t, o), reference.stall(t, o), "cs^{{{t},{o}}}");
            assert_eq!(
                cal.latency.get(t, o),
                reference.latency(t, o),
                "l^{{{t},{o}}}"
            );
        }
        assert_eq!(cal.lmu_dirty_latency, reference.lmu_dirty_latency());
    }

    #[test]
    fn parallel_calibration_matches_sequential_and_hits_cache() {
        let engine = ExecEngine::new(4);
        let par = calibrate_with(&engine).unwrap();
        assert_eq!(par, calibrate().unwrap());
        let r = engine.report();
        // The LMU/DFLASH word probes appear twice in the batch (stall
        // and latency campaigns) — four cache hits, zero re-simulation.
        assert_eq!(r.cache_hits, 4);
        assert_eq!(r.simulations_run, r.cache_misses);
    }

    #[test]
    fn calibrated_platform_behaves_like_reference() {
        let p = calibrate().unwrap().into_platform();
        assert_eq!(p.cs_code_min(), 6);
        assert_eq!(p.cs_data_min(), 10);
    }
}
