//! Latency and stall calibration — the campaign that regenerates
//! Table 2 of the paper using only DSU-observable quantities.
//!
//! ## Method
//!
//! *Minimum stall cycles* `cs^{t,o}` come from differential stall-counter
//! readings over microbenchmarks with a known request count: two probes
//! with `n₁ < n₂` requests give `cs = (S₂ − S₁) / (n₂ − n₁)`, immune to
//! one-off warm-up effects (§3.3.2).
//!
//! *Maximum latencies* `l^{t,o}` come from marginal-cost measurements on
//! CCNT, the method the paper describes ("the latency incurred by single
//! accesses to a target as measured by the on-chip cycle counter"):
//! the marginal cost of one extra *non-sequential* access, minus the
//! cost of the same loop iteration against the core-local scratchpad,
//! plus the one overlapped address cycle, equals the end-to-end
//! transaction latency. For code, the bounce probe's stall per
//! iteration minus the sequential stall isolates the non-sequential
//! fetch latency.

use contention::{LatencyTable, Operation, Platform, StallTable, Target};
use tc27x_sim::{CoreId, DataObject, Pattern, Placement, Program, Region, SimError, System, TaskSpec};
use workloads::micro;

/// The calibrated tables (the reproduction of Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Calibration {
    /// Worst-case per-request latencies `l^{t,o}`.
    pub latency: LatencyTable,
    /// Best-case per-request stall cycles `cs^{t,o}`.
    pub stall: StallTable,
    /// LMU dirty-miss end-to-end latency (Table 2's bracketed value).
    pub lmu_dirty_latency: u64,
}

impl Calibration {
    /// Builds a [`Platform`] from the calibrated tables.
    pub fn into_platform(self) -> Platform {
        Platform::from_tables(self.latency, self.stall, self.lmu_dirty_latency)
    }
}

fn run_counters(spec: &TaskSpec, core: CoreId) -> Result<contention::DebugCounters, SimError> {
    let mut sys = System::tc277();
    sys.load(core, spec)?;
    let out = sys.run()?;
    Ok(crate::runner::to_model_counters(out.counters(core)))
}

/// Differential over two probe sizes: `(f(n2) - f(n1)) / (n2 - n1)`.
fn differential(
    mut probe: impl FnMut(u32) -> Result<u64, SimError>,
    n1: u32,
    n2: u32,
) -> Result<u64, SimError> {
    let a = probe(n1)?;
    let b = probe(n2)?;
    Ok((b - a) / (n2 - n1) as u64)
}

/// Marginal per-iteration CCNT cost of a dspr-resident single-access
/// loop — the baseline subtracted from shared-memory probes.
fn dspr_baseline(core: CoreId) -> Result<u64, SimError> {
    let probe = |n: u32| -> Result<u64, SimError> {
        let prog = Program::build(|b| {
            b.repeat(n, |b| {
                b.load("local", Pattern::Sequential);
            });
        });
        let spec = TaskSpec::new("baseline", prog, Placement::pspr(core))
            .with_object(DataObject::new("local", 1 << 10, Placement::dspr(core)));
        Ok(run_counters(&spec, core)?.ccnt)
    };
    differential(probe, 200, 600)
}

/// Runs the full calibration campaign on a fresh TC277.
///
/// # Errors
///
/// Propagates simulation errors from the probe runs.
///
/// # Examples
///
/// ```
/// use contention::{Operation, Platform, Target};
///
/// # fn main() -> Result<(), tc27x_sim::SimError> {
/// let cal = mbta::calibrate()?;
/// // The campaign recovers Table 2 exactly on the reference platform.
/// let reference = Platform::tc277_reference();
/// assert_eq!(cal.stall.get(Target::Pf0, Operation::Code),
///            reference.stall(Target::Pf0, Operation::Code));
/// # Ok(())
/// # }
/// ```
pub fn calibrate() -> Result<Calibration, SimError> {
    let core = CoreId(1);
    let mut stall = StallTable::new();
    let mut latency = LatencyTable::new();

    // --- code stalls: ΔPMEM_STALL per line over streaming probes ---
    for (target, bank) in [
        (Target::Pf0, Region::Pflash0),
        (Target::Pf1, Region::Pflash1),
        (Target::Lmu, Region::Lmu),
    ] {
        let cs = differential(
            |n| Ok(run_counters(&micro::code_stream(bank, n), core)?.pmem_stall),
            64,
            320,
        )?;
        stall.set(target, Operation::Code, cs);

        // --- code latency: bounce stall per iteration − sequential cs ---
        let per_iter = differential(
            |n| Ok(run_counters(&micro::code_bounce(bank, n), core)?.pmem_stall),
            50,
            150,
        )?;
        latency.set(target, Operation::Code, per_iter - cs);
    }

    // --- data stalls ---
    for (target, bank) in [(Target::Pf0, Region::Pflash0), (Target::Pf1, Region::Pflash1)] {
        let cs = differential(
            |n| Ok(run_counters(&micro::data_lines(core, bank, n), core)?.dmem_stall),
            64,
            320,
        )?;
        stall.set(target, Operation::Data, cs);
    }
    for (target, region) in [(Target::Lmu, Region::Lmu), (Target::Dfl, Region::Dflash)] {
        let cs = differential(
            |n| Ok(run_counters(&micro::data_words(core, region, n, false), core)?.dmem_stall),
            100,
            400,
        )?;
        stall.set(target, Operation::Data, cs);
    }

    // --- data latencies: marginal CCNT − dspr baseline + 1 ---
    let base = dspr_baseline(core)?;
    for (target, bank) in [(Target::Pf0, Region::Pflash0), (Target::Pf1, Region::Pflash1)] {
        let marginal = differential(
            |n| Ok(run_counters(&micro::data_skip(core, bank, n), core)?.ccnt),
            400,
            1200,
        )?;
        latency.set(target, Operation::Data, marginal - base + 1);
    }
    for (target, region) in [(Target::Lmu, Region::Lmu), (Target::Dfl, Region::Dflash)] {
        let marginal = differential(
            |n| Ok(run_counters(&micro::data_words(core, region, n, false), core)?.ccnt),
            100,
            400,
        )?;
        latency.set(target, Operation::Data, marginal - base + 1);
    }

    // --- LMU dirty-miss latency ---
    let dirty_marginal = differential(
        |n| Ok(run_counters(&micro::dirty_stores(core, n), core)?.ccnt),
        600,
        1000,
    )?;
    let lmu_dirty_latency = dirty_marginal - base + 1;

    Ok(Calibration {
        latency,
        stall,
        lmu_dirty_latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline calibration test: the campaign must reproduce
    /// Table 2 of the paper cell by cell.
    #[test]
    fn calibration_reproduces_table2() {
        let cal = calibrate().unwrap();
        let reference = Platform::tc277_reference();
        for (t, o) in [
            (Target::Pf0, Operation::Code),
            (Target::Pf1, Operation::Code),
            (Target::Lmu, Operation::Code),
            (Target::Pf0, Operation::Data),
            (Target::Pf1, Operation::Data),
            (Target::Lmu, Operation::Data),
            (Target::Dfl, Operation::Data),
        ] {
            assert_eq!(
                cal.stall.get(t, o),
                reference.stall(t, o),
                "cs^{{{t},{o}}}"
            );
            assert_eq!(
                cal.latency.get(t, o),
                reference.latency(t, o),
                "l^{{{t},{o}}}"
            );
        }
        assert_eq!(cal.lmu_dirty_latency, reference.lmu_dirty_latency());
    }

    #[test]
    fn calibrated_platform_behaves_like_reference() {
        let p = calibrate().unwrap().into_platform();
        assert_eq!(p.cs_code_min(), 6);
        assert_eq!(p.cs_data_min(), 10);
    }
}
