//! Crash-safe experiment campaigns: the durable layer on top of
//! [`ExecEngine`].
//!
//! A [`CampaignRunner`] wraps an engine and adds what a multi-hour
//! evaluation sweep needs to survive the real world:
//!
//! * **a write-ahead journal** ([`crate::journal`]): every completed
//!   job — success or failure — is appended and fsync'd before the
//!   campaign moves on, keyed by the job's stable FNV key
//!   ([`crate::job_key`]) under a config fingerprint;
//! * **resume**: opening an existing journal replays completed jobs
//!   from disk and re-executes only missing or failed ones. Because
//!   every job is a pure function of its spec and results merge by
//!   batch index, the resumed output is byte-identical to an
//!   uninterrupted run at any worker count;
//! * **deterministic bounded retries** (policy shared through
//!   [`crate::retry`]): transient faults ([`JobFailure::Transient`],
//!   e.g. an injected dropped counter read) are retried up to
//!   [`RetryPolicy::max_attempts`] times with the attempt count folded
//!   into the job's SplitMix64 seed — the MBTA equivalent of
//!   re-measuring after a bad counter read. Watchdog expiries retry
//!   too, but with the *original* seed: the expiry is environmental,
//!   so a job that times out and then succeeds reproduces the
//!   undisturbed result exactly. Permanent failures (simulation
//!   errors, panics) never retry;
//! * **a wall-clock watchdog** complementing the simulator's
//!   `max_cycles` guard: a job that exceeds
//!   [`CampaignConfig::watchdog_millis`] of host time is recorded as
//!   [`JobFailure::TimedOut`] and the campaign degrades gracefully —
//!   it finishes with a [`CampaignManifest`] naming every unrecovered
//!   job instead of aborting.
//!
//! The runner implements [`BatchRunner`], so every experiment driver
//! that is generic over it — [`crate::figure4_panel_with`],
//! [`crate::table6_block_with`], [`crate::calibrate_with`], the bench
//! sweep — becomes durable by swapping the runner.

use crate::exec::{
    execute_job_budgeted, job_key_on, panic_message, BatchRunner, ExecEngine, JobFailure, SimJob,
    SimOutcome,
};
use crate::journal::{Journal, JournalEntry, JournalError, JournaledOutcome, RecoveryReport};
use crate::pool;
use crate::retry::{classify, fold_seed, FailureClass, RetryPolicy};
use contention::StableHasher;
use std::collections::{BTreeMap, HashMap};
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{mpsc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;
use tc27x_sim::rng::SplitMix64;

/// Deterministic transient-fault injection: before each attempt a
/// SplitMix64 stream seeded from `(plan seed, job key, attempt)` decides
/// whether the measurement "drops" — exercising the retry path without
/// any wall-clock dependence, so faulted campaigns replay exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Probability of an injected transient fault per attempt, in
    /// permille (0 = never, 1000 = always).
    pub rate_permille: u32,
    /// Seed of the injection stream.
    pub seed: u64,
}

impl FaultPlan {
    /// Whether this plan injects a fault for `(key, attempt)` — a pure
    /// function of the plan and those two values.
    pub fn injects(&self, key: u64, attempt: u32) -> bool {
        if self.rate_permille == 0 {
            return false;
        }
        let mut rng = SplitMix64::new(
            self.seed ^ key ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        rng.below(1000) < u64::from(self.rate_permille)
    }
}

/// Campaign behaviour knobs. Everything except the watchdog is part of
/// the journal's config fingerprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CampaignConfig {
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Optional transient-fault injection (testing the retry path).
    pub fault: Option<FaultPlan>,
    /// Wall-clock watchdog per job attempt, in milliseconds. `None`
    /// disables the watchdog and runs jobs on the engine directly.
    ///
    /// Deliberately **excluded** from the config fingerprint: the
    /// watchdog only decides how long the host waits, never what a
    /// completed job computes, so resuming with a longer watchdog to
    /// recover previously timed-out jobs is legitimate.
    pub watchdog_millis: Option<u64>,
    /// Journal durability policy. `false` (the default, the PR-3
    /// behaviour) warns and counts a failed append but lets the job's
    /// outcome stand: finishing beats aborting a multi-hour sweep over
    /// a full disk. `true` converts a failed append into a
    /// [`JobFailure::Transient`] for that job — the write-ahead
    /// guarantee is then absolute: no outcome is ever reported that
    /// the journal cannot replay. Excluded from the config fingerprint
    /// for the same reason as the watchdog: it decides how an
    /// *environmental* I/O failure is surfaced, never what a completed
    /// job computes, so a journal written under either policy replays
    /// into the other.
    pub journal_strict: bool,
    /// Optional deterministic *watchdog-expiry* injection: a pure
    /// `(seed, key, attempt)` plan that records an attempt as
    /// [`JobFailure::TimedOut`] without running it — the test seam for
    /// the watchdog-vs-retry interaction. Like the watchdog itself it
    /// is **excluded** from the config fingerprint: an expiry is an
    /// environmental event and never changes what a completed job
    /// computes, so the retried job runs with its *original* seed and
    /// the recovered campaign output is byte-identical to one that
    /// never timed out.
    pub timeout_fault: Option<FaultPlan>,
}

impl CampaignConfig {
    /// The fingerprint a journal written under this config carries
    /// (combined with the engine's cycle budget, which caps the
    /// simulated work per job, and the engine's platform description,
    /// which decides the simulated machine). The default platform
    /// contributes nothing, so journals written before platforms were
    /// pluggable resume unchanged.
    fn fingerprint(&self, cycle_budget: Option<u64>, desc: &::platform::PlatformDesc) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("mbta-campaign/v1");
        if !desc.is_default() {
            h.write_str("platform");
            h.write_u64(desc.fingerprint());
        }
        h.write_u64(u64::from(self.retry.max_attempts));
        match self.fault {
            Some(p) => {
                h.write_u8(1);
                h.write_u64(u64::from(p.rate_permille));
                h.write_u64(p.seed);
            }
            None => {
                h.write_u8(0);
            }
        }
        match cycle_budget {
            Some(b) => {
                h.write_u8(1);
                h.write_u64(b);
            }
            None => {
                h.write_u8(0);
            }
        }
        h.finish()
    }
}

/// One unrecovered job in the partial-result manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The job's stable FNV key.
    pub key: u64,
    /// Human-readable job description.
    pub label: String,
    /// Attempts consumed (1 = failed on the first try).
    pub attempts: u32,
    /// Failure class token (`sim`, `panic`, `timeout`, `transient`).
    pub kind: String,
    /// Display form of the last failure.
    pub failure: String,
}

/// What a campaign delivered: how many distinct jobs completed and
/// which ones never recovered. A campaign with unrecovered jobs is
/// *partial*, not failed — callers keep every completed result.
#[derive(Clone, Debug, Default)]
pub struct CampaignManifest {
    /// Distinct jobs with a completed (possibly journal-replayed)
    /// outcome.
    pub completed: usize,
    /// Jobs that stayed failed after retries, in key order.
    pub unrecovered: Vec<ManifestEntry>,
}

impl CampaignManifest {
    /// Whether every submitted job completed.
    pub fn is_complete(&self) -> bool {
        self.unrecovered.is_empty()
    }

    /// Plain-text rendering for campaign binaries and CI logs.
    pub fn render(&self) -> String {
        let mut out = format!(
            "campaign manifest: {} job(s) completed, {} unrecovered\n",
            self.completed,
            self.unrecovered.len()
        );
        for e in &self.unrecovered {
            out.push_str(&format!(
                "  UNRECOVERED {:016x} [{}] after {} attempt(s): {} ({})\n",
                e.key, e.label, e.attempts, e.failure, e.kind
            ));
        }
        out
    }
}

/// Lifetime counters of a campaign (all monotonic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Jobs served from the journal replay map (no simulation).
    pub replayed: u64,
    /// Job attempts actually executed.
    pub executed: u64,
    /// Retries after transient failures.
    pub retried: u64,
    /// Transient faults injected by the fault plan.
    pub injected_faults: u64,
    /// Watchdog expiries.
    pub timed_out: u64,
    /// Journal append errors (durability lost, campaign continued).
    pub journal_errors: u64,
}

/// The crash-safe campaign runner. See the [module docs](self).
pub struct CampaignRunner<'e> {
    engine: &'e ExecEngine,
    config: CampaignConfig,
    journal: Option<Journal>,
    /// Completed outcomes by job key — journal replays plus everything
    /// finished this run. This is what makes resume O(missing jobs).
    replay: Mutex<HashMap<u64, SimOutcome>>,
    /// Unrecovered jobs by key (BTreeMap for deterministic manifest
    /// order). A later success for the same key clears the entry.
    failed: Mutex<BTreeMap<u64, ManifestEntry>>,
    replayed: AtomicU64,
    executed: AtomicU64,
    retried: AtomicU64,
    injected: AtomicU64,
    timed_out: AtomicU64,
    journal_errors: AtomicU64,
}

impl std::fmt::Debug for CampaignRunner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignRunner")
            .field("config", &self.config)
            .field("journal", &self.journal)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<'e> CampaignRunner<'e> {
    /// A campaign without a journal: retries, watchdog and manifest
    /// only. Useful as the A/B baseline when measuring journal
    /// overhead.
    pub fn new(engine: &'e ExecEngine, config: CampaignConfig) -> Self {
        CampaignRunner {
            engine,
            config,
            journal: None,
            replay: Mutex::new(HashMap::new()),
            failed: Mutex::new(BTreeMap::new()),
            replayed: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            journal_errors: AtomicU64::new(0),
        }
    }

    /// A journaled campaign writing a **fresh** journal at `path`
    /// (truncating any previous file).
    ///
    /// # Errors
    ///
    /// Propagates journal I/O errors.
    pub fn journaled(
        engine: &'e ExecEngine,
        config: CampaignConfig,
        path: &Path,
    ) -> Result<Self, JournalError> {
        let fp = config.fingerprint(engine.cycle_budget(), engine.platform());
        let journal = Journal::create(path, fp)?;
        let mut runner = CampaignRunner::new(engine, config);
        runner.journal = Some(journal);
        Ok(runner)
    }

    /// A journaled campaign over an already constructed [`Journal`] —
    /// pairs with [`Journal::with_sink`] so tests can drive the
    /// journal's write/fsync error paths through a fallible sink. The
    /// caller owns fingerprint consistency (a sink-backed journal was
    /// never read back, so there is nothing to validate).
    pub fn with_journal(engine: &'e ExecEngine, config: CampaignConfig, journal: Journal) -> Self {
        let mut runner = CampaignRunner::new(engine, config);
        runner.journal = Some(journal);
        runner
    }

    /// The fingerprint a journal written under this campaign's
    /// configuration carries — what [`Journal::with_sink`] callers pair
    /// with [`Self::with_journal`].
    pub fn config_fingerprint(&self) -> u64 {
        self.config
            .fingerprint(self.engine.cycle_budget(), self.engine.platform())
    }

    /// Resumes a journaled campaign from `path`: recovers every intact
    /// record (truncating a torn trailing record with a warning in the
    /// [`RecoveryReport`]), replays completed jobs into the runner and
    /// primes the engine's memo cache as those jobs are re-requested.
    /// Journaled failures are *not* replayed — the jobs re-execute,
    /// deterministically reproducing the original outcome (or
    /// recovering, if e.g. the watchdog is now longer).
    ///
    /// # Errors
    ///
    /// [`JournalError::ConfigMismatch`] when the journal belongs to a
    /// differently configured campaign, plus all recovery errors of
    /// [`Journal::resume`].
    pub fn resumed(
        engine: &'e ExecEngine,
        config: CampaignConfig,
        path: &Path,
    ) -> Result<(Self, RecoveryReport), JournalError> {
        let fp = config.fingerprint(engine.cycle_budget(), engine.platform());
        let (journal, entries, report) = Journal::resume(path, fp)?;
        let mut runner = CampaignRunner::new(engine, config);
        runner.journal = Some(journal);
        {
            let mut replay = lock(&runner.replay);
            for JournalEntry { key, outcome, .. } in entries {
                // Later records win: a retry that eventually succeeded
                // leaves its success as the key's final word.
                if let JournaledOutcome::Success(o) = outcome {
                    replay.insert(key, o);
                }
            }
        }
        Ok((runner, report))
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &ExecEngine {
        self.engine
    }

    /// Snapshot of the campaign counters.
    pub fn stats(&self) -> CampaignStats {
        CampaignStats {
            replayed: self.replayed.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            injected_faults: self.injected.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            journal_errors: self.journal_errors.load(Ordering::Relaxed),
        }
    }

    /// The partial-result manifest: completed-job count plus every job
    /// that stayed failed, in stable key order.
    pub fn manifest(&self) -> CampaignManifest {
        CampaignManifest {
            completed: lock(&self.replay).len(),
            unrecovered: lock(&self.failed).values().cloned().collect(),
        }
    }

    /// Appends one outcome to the journal. Returns the failure that
    /// should replace the job's result under the strict durability
    /// policy, `None` when the outcome stands (append succeeded, no
    /// journal, or the default lenient policy).
    fn journal_append(
        &self,
        key: u64,
        attempt: u32,
        result: &Result<SimOutcome, JobFailure>,
    ) -> Option<JobFailure> {
        let journal = self.journal.as_ref()?;
        let Err(e) = journal.append(key, attempt, result) else {
            return None;
        };
        self.journal_errors.fetch_add(1, Ordering::Relaxed);
        let message = format!("journal append failed at {}: {e}", journal.path().display());
        match self.engine.telemetry() {
            // The channel dedups by code: a full disk warns
            // once, not once per record.
            Some(t) => t.warn("journal.append_failed", message.clone()),
            None => eprintln!("warning: {message}"),
        }
        // Lenient (default): durability is lost but the campaign's
        // results are still correct; finishing beats aborting a
        // multi-hour sweep over a full disk. Strict: an outcome the
        // journal cannot replay must not be reported as completed.
        self.config
            .journal_strict
            .then_some(JobFailure::Transient { detail: message })
    }

    /// Executes one attempt of `job`, with fault injection and the
    /// watchdog applied. `reseeds` counts the *re-measuring* retries so
    /// far — the value folded into the seed; same-seed retries (after a
    /// timeout) advance `attempt` without advancing it.
    fn attempt(
        &self,
        job: &SimJob,
        key: u64,
        attempt: u32,
        reseeds: u32,
    ) -> Result<SimOutcome, JobFailure> {
        if let Some(plan) = &self.config.fault {
            if plan.injects(key, attempt) {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Err(JobFailure::Transient {
                    detail: format!("injected dropped counter read (attempt {attempt})"),
                });
            }
        }
        if let Some(plan) = &self.config.timeout_fault {
            if plan.injects(key, attempt) {
                self.timed_out.fetch_add(1, Ordering::Relaxed);
                return Err(JobFailure::TimedOut {
                    millis: self.config.watchdog_millis.unwrap_or(0),
                });
            }
        }
        self.executed.fetch_add(1, Ordering::Relaxed);
        let run = job_for_attempt(job, reseeds);
        match self.config.watchdog_millis {
            None => {
                // No watchdog: run on the engine itself, which brings
                // memoization and panic containment for free.
                let mut out = self.engine.run_batch_detailed(std::slice::from_ref(&run));
                out.pop()
                    .unwrap_or_else(|| Err(JobFailure::Panic("engine returned no result".into())))
            }
            Some(millis) => {
                let result = run_with_watchdog(
                    &run,
                    self.engine.cycle_budget(),
                    self.engine.sim_engine(),
                    self.engine.block_memo(),
                    self.engine.platform().clone(),
                    millis,
                );
                if matches!(result, Err(JobFailure::TimedOut { .. })) {
                    self.timed_out.fetch_add(1, Ordering::Relaxed);
                }
                // The watchdog path bypasses the engine; feed fresh
                // isolation profiles back into its memo cache so later
                // batches and model evaluations reuse them.
                if let Ok(SimOutcome::Isolation(p)) = &result {
                    self.engine.prime(&run, p.clone());
                }
                result
            }
        }
    }

    /// Runs one job to its final outcome: attempts, retries, journal
    /// records, replay/manifest bookkeeping.
    fn run_one(&self, job: &SimJob, key: u64) -> Result<SimOutcome, JobFailure> {
        let max_attempts = self.config.retry.max_attempts.max(1);
        let mut attempt = 0;
        let mut reseeds = 0;
        loop {
            let mut result = self.attempt(job, key, attempt, reseeds);
            if let Some(failure) = self.journal_append(key, attempt, &result) {
                result = Err(failure);
            }
            match result {
                Ok(outcome) => {
                    lock(&self.replay).insert(key, outcome.clone());
                    lock(&self.failed).remove(&key);
                    return Ok(outcome);
                }
                Err(failure) if attempt + 1 < max_attempts && classify(&failure).is_transient() => {
                    if classify(&failure) == (FailureClass::Transient { reseed: true }) {
                        reseeds += 1;
                    }
                    self.retried.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                }
                Err(failure) => {
                    lock(&self.failed).insert(
                        key,
                        ManifestEntry {
                            key,
                            label: describe(job),
                            attempts: attempt + 1,
                            kind: crate::journal::failure_kind(&failure).to_string(),
                            failure: failure.to_string(),
                        },
                    );
                    return Err(failure);
                }
            }
        }
    }
}

impl BatchRunner for CampaignRunner<'_> {
    fn platform(&self) -> &::platform::PlatformDesc {
        self.engine.platform()
    }

    fn run_batch_detailed(&self, batch: &[SimJob]) -> Vec<Result<SimOutcome, JobFailure>> {
        let keys: Vec<u64> = batch
            .iter()
            .map(|j| job_key_on(j, self.engine.platform()))
            .collect();
        let mut results: Vec<Option<Result<SimOutcome, JobFailure>>> = vec![None; batch.len()];

        // Phase 1: replay — serve journal-recovered (and already
        // completed) jobs from the replay map, priming the engine cache
        // with their isolation profiles.
        {
            let replay = lock(&self.replay);
            for (i, key) in keys.iter().enumerate() {
                if let Some(outcome) = replay.get(key) {
                    if let SimOutcome::Isolation(p) = outcome {
                        self.engine.prime(&batch[i], p.clone());
                    }
                    self.replayed.fetch_add(1, Ordering::Relaxed);
                    results[i] = Some(Ok(outcome.clone()));
                }
            }
        }

        // Phase 2: dedupe the remainder by key — equal jobs execute
        // (and journal) once per batch; duplicates clone the result.
        let mut first_by_key: HashMap<u64, usize> = HashMap::new();
        let mut pending: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if results[i].is_some() || first_by_key.contains_key(key) {
                continue;
            }
            first_by_key.insert(*key, i);
            pending.push(i);
        }

        // Phase 3: execute pending jobs on the pool. Results collect by
        // index, so the merged batch is identical for any worker count.
        let executed: Vec<Result<SimOutcome, JobFailure>> =
            pool::run_indexed(&pending, self.engine.jobs(), |_, &i| {
                self.run_one(&batch[i], keys[i])
            });

        // Phase 4: merge in batch order; alias slots clone their twin.
        let by_key: HashMap<u64, Result<SimOutcome, JobFailure>> =
            pending.iter().map(|&i| keys[i]).zip(executed).collect();
        results
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot {
                Some(r) => r,
                None => match by_key.get(&keys[i]) {
                    Some(r) => r.clone(),
                    None => Err(JobFailure::Panic("job was never planned".into())),
                },
            })
            .collect()
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Human-readable job description for the manifest.
fn describe(job: &SimJob) -> String {
    match job {
        SimJob::Isolation { spec, core } => format!("isolation {}@core{}", spec.name, core.0),
        SimJob::Corun {
            app,
            app_core,
            load,
            load_core,
        } => format!(
            "corun {}@core{} vs {}@core{}",
            app.name, app_core.0, load.name, load_core.0
        ),
        SimJob::Poison => "poison".to_string(),
    }
}

/// The job actually executed for a given *re-measuring* retry count:
/// count 0 is the original job (so unfaulted campaigns — and campaigns
/// whose only failures were environmental timeouts — are byte-identical
/// to plain engine runs); later counts fold into every task seed
/// through SplitMix64 ([`crate::retry::fold_seed`]) — a fresh,
/// deterministic re-measurement.
fn job_for_attempt(job: &SimJob, reseeds: u32) -> SimJob {
    if reseeds == 0 {
        return job.clone();
    }
    let mut run = job.clone();
    match &mut run {
        SimJob::Isolation { spec, .. } => spec.seed = fold_seed(spec.seed, reseeds),
        SimJob::Corun { app, load, .. } => {
            app.seed = fold_seed(app.seed, reseeds);
            load.seed = fold_seed(load.seed, reseeds);
        }
        SimJob::Poison => {}
    }
    run
}

/// Executes `job` on a helper thread and gives up after `millis` of
/// wall-clock time. The helper is detached on timeout — it cannot be
/// cancelled mid-simulation, but the simulator's own `max_cycles`
/// budget bounds how long it can linger, and its eventual result is
/// discarded through the closed channel.
fn run_with_watchdog(
    job: &SimJob,
    cycle_budget: Option<u64>,
    sim_engine: tc27x_sim::Engine,
    block_memo: bool,
    desc: ::platform::PlatformDesc,
    millis: u64,
) -> Result<SimOutcome, JobFailure> {
    let (tx, rx) = mpsc::channel();
    let owned = job.clone();
    std::thread::spawn(move || {
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            execute_job_budgeted(&owned, cycle_budget, sim_engine, block_memo, &desc)
        }))
        .unwrap_or_else(|payload| Err(JobFailure::Panic(panic_message(payload))));
        let _ = tx.send(result);
    });
    match rx.recv_timeout(Duration::from_millis(millis)) {
        Ok(result) => result,
        Err(RecvTimeoutError::Timeout) => Err(JobFailure::TimedOut { millis }),
        Err(RecvTimeoutError::Disconnected) => Err(JobFailure::Panic(
            "watchdog thread terminated without a result".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use tc27x_sim::{CoreId, DeploymentScenario};
    use workloads::{contender, control_loop, LoadLevel};

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mbta-campaign-unit-{}-{name}", std::process::id()));
        p
    }

    fn batch() -> Vec<SimJob> {
        let (a, b) = (CoreId(1), CoreId(2));
        let app = control_loop(DeploymentScenario::Scenario1, a, 42);
        let mut jobs = vec![SimJob::Isolation {
            spec: app.clone(),
            core: a,
        }];
        for level in LoadLevel::all() {
            let load = contender(DeploymentScenario::Scenario1, level, b, 7);
            jobs.push(SimJob::Isolation {
                spec: load.clone(),
                core: b,
            });
            jobs.push(SimJob::Corun {
                app: app.clone(),
                app_core: a,
                load,
                load_core: b,
            });
        }
        jobs
    }

    fn ccnts(results: &[Result<SimOutcome, JobFailure>]) -> Vec<u64> {
        results
            .iter()
            .map(|r| match r.as_ref().unwrap() {
                SimOutcome::Isolation(p) => p.counters().ccnt,
                SimOutcome::Corun(c) => *c,
            })
            .collect()
    }

    #[test]
    fn unjournaled_campaign_matches_the_plain_engine() {
        let engine = ExecEngine::new(2);
        let reference = ccnts(&engine.run_batch_detailed(&batch()));
        let engine2 = ExecEngine::new(2);
        let campaign = CampaignRunner::new(&engine2, CampaignConfig::default());
        let got = ccnts(&campaign.run_batch_detailed(&batch()));
        assert_eq!(got, reference);
        assert!(campaign.manifest().is_complete());
    }

    #[test]
    fn journal_resume_replays_without_resimulating() {
        let path = tmp("resume");
        let reference = {
            let engine = ExecEngine::new(2);
            let campaign =
                CampaignRunner::journaled(&engine, CampaignConfig::default(), &path).unwrap();
            ccnts(&campaign.run_batch_detailed(&batch()))
        };
        let engine = ExecEngine::new(2);
        let (campaign, report) =
            CampaignRunner::resumed(&engine, CampaignConfig::default(), &path).unwrap();
        assert_eq!(report.truncated_bytes, 0);
        assert!(report.records >= batch().len());
        let got = ccnts(&campaign.run_batch_detailed(&batch()));
        assert_eq!(got, reference);
        let stats = campaign.stats();
        assert_eq!(stats.executed, 0, "everything came from the journal");
        assert_eq!(stats.replayed as usize, batch().len());
        assert_eq!(engine.report().simulations_run, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transient_faults_retry_and_recover() {
        let engine = ExecEngine::new(2);
        let config = CampaignConfig {
            retry: RetryPolicy { max_attempts: 4 },
            // 40%: with 4 attempts per job the chance of a job
            // exhausting its budget is ~2.6% per job; the seed below is
            // chosen so this particular batch fully recovers.
            fault: Some(FaultPlan {
                rate_permille: 400,
                seed: 11,
            }),
            watchdog_millis: None,
            journal_strict: false,
            timeout_fault: None,
        };
        let campaign = CampaignRunner::new(&engine, config);
        let results = campaign.run_batch_detailed(&batch());
        let stats = campaign.stats();
        assert!(stats.injected_faults > 0, "plan never fired");
        assert_eq!(stats.retried, stats.injected_faults);
        assert!(
            results.iter().all(Result::is_ok),
            "every job recovered: {:?}",
            campaign.manifest().render()
        );
        // Same config, same seed → identical stats and outcomes.
        let engine2 = ExecEngine::new(2);
        let campaign2 = CampaignRunner::new(&engine2, config);
        let results2 = campaign2.run_batch_detailed(&batch());
        assert_eq!(ccnts(&results), ccnts(&results2));
        assert_eq!(campaign2.stats().injected_faults, stats.injected_faults);
    }

    #[test]
    fn always_faulting_jobs_land_in_the_manifest() {
        let engine = ExecEngine::new(2);
        let config = CampaignConfig {
            retry: RetryPolicy { max_attempts: 2 },
            fault: Some(FaultPlan {
                rate_permille: 1000,
                seed: 1,
            }),
            watchdog_millis: None,
            journal_strict: false,
            timeout_fault: None,
        };
        let campaign = CampaignRunner::new(&engine, config);
        let jobs = batch();
        let results = campaign.run_batch_detailed(&jobs);
        assert!(results.iter().all(Result::is_err));
        let manifest = campaign.manifest();
        assert!(!manifest.is_complete());
        assert_eq!(manifest.completed, 0);
        // 7 distinct jobs: 4 isolations (one app + three contenders)
        // and 3 co-runs.
        assert_eq!(manifest.unrecovered.len(), 7);
        for e in &manifest.unrecovered {
            assert_eq!(e.kind, "transient");
            assert_eq!(e.attempts, 2, "both attempts consumed");
        }
        let rendered = manifest.render();
        assert!(rendered.contains("UNRECOVERED"));
        assert!(rendered.contains("cruise-control"));
    }

    #[test]
    fn watchdog_times_out_starved_jobs_and_campaign_degrades() {
        // A 0 ms watchdog expires before any simulation can finish.
        let engine = ExecEngine::new(2);
        let config = CampaignConfig {
            watchdog_millis: Some(0),
            ..CampaignConfig::default()
        };
        let campaign = CampaignRunner::new(&engine, config);
        let jobs = batch();
        let results = campaign.run_batch_detailed(&jobs);
        assert_eq!(results.len(), jobs.len());
        assert!(results
            .iter()
            .all(|r| matches!(r, Err(JobFailure::TimedOut { .. }))));
        let manifest = campaign.manifest();
        assert_eq!(manifest.unrecovered.len(), 7);
        assert!(manifest.unrecovered.iter().all(|e| e.kind == "timeout"));
        assert!(campaign.stats().timed_out >= 7);

        // A generous watchdog lets the same campaign succeed and must
        // reproduce the engine's results exactly.
        let engine2 = ExecEngine::new(2);
        let reference = ccnts(&engine2.run_batch_detailed(&jobs));
        let engine3 = ExecEngine::new(2);
        let generous = CampaignRunner::new(
            &engine3,
            CampaignConfig {
                watchdog_millis: Some(60_000),
                ..CampaignConfig::default()
            },
        );
        let got = ccnts(&generous.run_batch_detailed(&jobs));
        assert_eq!(got, reference);
        assert!(generous.manifest().is_complete());
        // The watchdog path primes the engine cache.
        assert!(engine3.cached_profiles() >= 4);
    }

    #[test]
    fn resume_after_timeouts_recovers_with_a_longer_watchdog() {
        let path = tmp("watchdog-resume");
        let jobs = batch();
        {
            let engine = ExecEngine::new(2);
            let campaign = CampaignRunner::journaled(
                &engine,
                CampaignConfig {
                    watchdog_millis: Some(0),
                    ..CampaignConfig::default()
                },
                &path,
            )
            .unwrap();
            let results = campaign.run_batch_detailed(&jobs);
            assert!(results.iter().all(Result::is_err));
        }
        // The watchdog is not part of the config fingerprint, so the
        // journal opens fine with a longer one and the jobs recover.
        let engine = ExecEngine::new(2);
        let (campaign, _) = CampaignRunner::resumed(
            &engine,
            CampaignConfig {
                watchdog_millis: Some(60_000),
                ..CampaignConfig::default()
            },
            &path,
        )
        .unwrap();
        let results = campaign.run_batch_detailed(&jobs);
        assert!(results.iter().all(Result::is_ok));
        assert!(campaign.manifest().is_complete());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn config_fingerprint_separates_campaigns() {
        let path = tmp("fingerprint");
        {
            let engine = ExecEngine::new(1);
            CampaignRunner::journaled(&engine, CampaignConfig::default(), &path).unwrap();
        }
        let engine = ExecEngine::new(1);
        let different = CampaignConfig {
            retry: RetryPolicy { max_attempts: 9 },
            ..CampaignConfig::default()
        };
        let err = CampaignRunner::resumed(&engine, different, &path).unwrap_err();
        assert!(matches!(err, JournalError::ConfigMismatch { .. }), "{err}");
        // A different watchdog alone is NOT a different campaign.
        let engine2 = ExecEngine::new(1);
        let longer = CampaignConfig {
            watchdog_millis: Some(123),
            ..CampaignConfig::default()
        };
        assert!(CampaignRunner::resumed(&engine2, longer, &path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_with_duplicates_executes_each_key_once() {
        let engine = ExecEngine::new(2);
        let campaign = CampaignRunner::new(&engine, CampaignConfig::default());
        let job = SimJob::Isolation {
            spec: control_loop(DeploymentScenario::Scenario1, CoreId(1), 42),
            core: CoreId(1),
        };
        let five = vec![job; 5];
        let results = campaign.run_batch_detailed(&five);
        let values = ccnts(&results);
        assert!(values.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(campaign.stats().executed, 1, "four of five were aliases");
    }
}
