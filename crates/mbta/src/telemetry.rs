//! The harness-side telemetry recorder: wiring between the hot paths
//! (engine, campaign, solver, simulator statistics) and the pure
//! [`obs`] primitives.
//!
//! A [`Telemetry`] value is shared by everything that observes one run:
//! the [`crate::ExecEngine`] records per-job spans and simulator
//! statistics as batches merge, the solver layer records branch & bound
//! node counts, and every formerly ad-hoc stderr diagnostic goes
//! through the deduplicated warning channel. At the end of the run
//! [`Telemetry::to_stream`] assembles the deterministic [`obs::Stream`]
//! and [`Telemetry::flush`] renders it to the `--telemetry` sink.
//!
//! # Determinism
//!
//! Every mutation is commutative or keyed:
//!
//! * job spans are keyed by [`crate::job_key`] and first-write-wins, so
//!   concurrent workers and repeated batches produce one span per job,
//!   emitted in key order;
//! * metric registries merge additively ([`obs::Registry`] is
//!   commutative), and the *set* of executed jobs is itself
//!   deterministic — the engine's plan phase is sequential;
//! * solver records are appended from the single-threaded evaluation
//!   loop, in call order.
//!
//! Wall-clock time, worker counts and the timing kernel go only into
//! the `det:false` profile record, so the deterministic subset of the
//! rendered stream is byte-identical at any `--jobs` and on either
//! engine.

use crate::exec::{EngineReport, SimJob};
use crate::CampaignStats;
use obs::{span_id, MatrixRec, SpanRec, Stream, Warning};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::{Mutex, MutexGuard, PoisonError};
use tc27x_sim::attribution::{AGGRESSOR_COLS, SCHED_COL};
use tc27x_sim::{AccessClass, AttributionMatrix, CoreId, SimStats, SriTarget};

pub use obs::{Format, SinkSpec, Val};

/// Telemetry schema version, bumped whenever record shapes change.
/// v2: `matrix`/`table` record kinds (contention attribution ledger).
pub const SCHEMA_VERSION: u64 = 2;

/// The Chrome-trace track (`tid`) solver spans render on, clear of the
/// per-core simulation tracks (cores are 0–2 on the TC27x).
const SOLVER_TRACK: u32 = 7;

/// One recorded simulation job, keyed by [`crate::job_key`].
#[derive(Clone, Debug)]
struct JobRec {
    name: String,
    kind: &'static str,
    track: u32,
    cycles: u64,
}

/// One recorded ILP solve, in evaluation order.
#[derive(Clone, Debug)]
struct SolveRec {
    label: String,
    nodes: u64,
    fallback: bool,
}

#[derive(Debug, Default)]
struct Inner {
    meta: Vec<(String, Val)>,
    jobs: BTreeMap<u64, JobRec>,
    /// Per-job attribution ledgers, keyed like `jobs` and first-write-
    /// wins: folding the values in ascending key order is deterministic
    /// at any worker count even without relying on merge commutativity.
    attribution: BTreeMap<u64, AttributionMatrix>,
    solves: Vec<SolveRec>,
    det: obs::Registry,
    nondet: obs::Registry,
    warnings: BTreeMap<String, Warning>,
    profile: Vec<(String, Val)>,
}

/// The shared telemetry recorder of one run. See the [module
/// docs](self) for the determinism contract.
#[derive(Debug)]
pub struct Telemetry {
    command: String,
    inner: Mutex<Inner>,
}

fn lock(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Lowercase slave label for metric names, matching [`SriTarget::all`].
fn slave_label(t: SriTarget) -> &'static str {
    match t {
        SriTarget::Pf0 => "pf0",
        SriTarget::Pf1 => "pf1",
        SriTarget::Dfl => "dfl",
        SriTarget::Lmu => "lmu",
    }
}

/// Renders a folded attribution ledger as deterministic `matrix`
/// records, in name order: per-victim grant counts and other-core
/// interference by access class, per-(slave, victim) worst single-grant
/// waits, and the full `victim × aggressor` wait matrix whose cells sum
/// to the slaves' `queue_delay` (the conservation invariant the CI
/// attribution stage replays).
pub fn attribution_matrices(m: &AttributionMatrix) -> Vec<MatrixRec> {
    let core = |i: usize| format!("c{i}");
    let class_cols = vec!["co".to_string(), "da".to_string()];
    let core_rows: Vec<String> = (0..CoreId::COUNT).map(core).collect();
    let pair_rows: Vec<String> = SriTarget::all()
        .iter()
        .flat_map(|t| (0..CoreId::COUNT).map(move |v| format!("{}/{}", slave_label(*t), core(v))))
        .collect();
    let per_class = |f: &dyn Fn(CoreId, AccessClass) -> u64| -> Vec<u64> {
        CoreId::all()
            .iter()
            .flat_map(|&v| [AccessClass::Code, AccessClass::Data].map(|c| f(v, c)))
            .collect()
    };
    vec![
        MatrixRec {
            name: "attribution.grants".to_string(),
            rows: core_rows.clone(),
            cols: class_cols.clone(),
            cells: per_class(&|v, c| m.class_grants_total(v, c)),
        },
        MatrixRec {
            name: "attribution.interference".to_string(),
            rows: core_rows.clone(),
            cols: class_cols,
            cells: per_class(&|v, c| m.interference_total(v, c)),
        },
        MatrixRec {
            name: "attribution.max_wait".to_string(),
            rows: SriTarget::all()
                .iter()
                .map(|t| slave_label(*t).to_string())
                .collect(),
            cols: core_rows,
            cells: SriTarget::all()
                .iter()
                .flat_map(|&t| CoreId::all().map(move |v| m.max_wait(t, v)))
                .collect(),
        },
        MatrixRec {
            name: "attribution.wait".to_string(),
            rows: pair_rows,
            cols: (0..AGGRESSOR_COLS)
                .map(|a| {
                    if a == SCHED_COL {
                        "sched".to_string()
                    } else {
                        core(a)
                    }
                })
                .collect(),
            cells: SriTarget::all()
                .iter()
                .flat_map(|&t| CoreId::all().map(move |v| m.row(t, v)))
                .flatten()
                .collect(),
        },
    ]
}

/// Renders a folded attribution ledger as a standalone JSONL stream of
/// `matrix` records — the `--attribution FILE` sink. Deterministic:
/// byte-identical for any worker count and timing kernel.
pub fn render_attribution_jsonl(m: &AttributionMatrix) -> String {
    let mut stream = Stream::new();
    stream.matrices = attribution_matrices(m);
    stream.render_jsonl()
}

impl Telemetry {
    /// A recorder for the named command (e.g. `sweep sc2`). The command
    /// becomes the root span and the `meta` record's identity.
    pub fn new(command: impl Into<String>) -> Self {
        Telemetry {
            command: command.into(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Appends a run-invariant `meta` field. Must never carry the
    /// worker count, the timing kernel or wall-clock time — those go to
    /// [`profile`](Self::profile).
    pub fn meta(&self, key: impl Into<String>, value: Val) {
        lock(&self.inner).meta.push((key.into(), value));
    }

    /// Appends a field to the non-deterministic `profile` record (the
    /// only legitimate home for wall-clock time, `--jobs` and the
    /// engine choice).
    pub fn profile(&self, key: impl Into<String>, value: Val) {
        lock(&self.inner).profile.push((key.into(), value));
    }

    /// Records one executed simulation job: a first-write-wins span
    /// keyed by `key` plus additive metric merges. `cycles` is the
    /// job's logical duration (CCNT for isolations, observed app cycles
    /// for co-runs); `stats` carries the post-run simulator statistics
    /// when the execution path collected them.
    ///
    /// Per-slave SRI queueing metrics are deterministic (grants are
    /// bit-identical across engines and worker counts); event-kernel
    /// statistics are engine-dependent and land in the
    /// non-deterministic registry.
    pub fn record_job(&self, key: u64, job: &SimJob, cycles: u64, stats: Option<&SimStats>) {
        let (name, kind, track) = match job {
            SimJob::Isolation { spec, core } => (
                format!("iso:{}@{}", spec.name, core.0),
                "iso",
                u32::from(core.0),
            ),
            SimJob::Corun {
                app,
                app_core,
                load,
                ..
            } => (
                format!("corun:{}+{}", app.name, load.name),
                "corun",
                u32::from(app_core.0),
            ),
            SimJob::Poison => ("poison".to_string(), "poison", 0),
        };
        let mut inner = lock(&self.inner);
        inner.det.add("exec.jobs_recorded", 1);
        inner.jobs.entry(key).or_insert(JobRec {
            name,
            kind,
            track,
            cycles,
        });
        if let Some(s) = stats {
            if !s.attribution.is_zero() {
                inner.attribution.entry(key).or_insert(s.attribution);
            }
            for target in SriTarget::all() {
                let slave = s.slave(target);
                let label = slave_label(target);
                inner.det.add(&format!("sri.{label}.served"), slave.served);
                inner
                    .det
                    .observe_hist(&format!("sri.{label}.queue_delay"), &slave.delay_hist);
            }
            inner.nondet.add("kernel.ff_jumps", s.kernel.ff_jumps);
            inner
                .nondet
                .observe_hist("kernel.ff_gap", &s.kernel.gap_hist);
            inner
                .nondet
                .observe_hist("kernel.claims_depth", &s.kernel.depth_hist);
            // Block-memo statistics are, like ff_jumps, a property of
            // how the event kernel got to the (bit-identical) result —
            // zero under the tick stepper or with the memo disabled —
            // so they live in the non-deterministic registry too.
            inner.nondet.add("kernel.memo_hits", s.kernel.memo_hits);
            inner
                .nondet
                .add("kernel.memo_records", s.kernel.memo_records);
            inner
                .nondet
                .add("kernel.memo_invalidations", s.kernel.memo_invalidations);
            inner
                .nondet
                .add("kernel.memo_evictions", s.kernel.memo_evictions);
            inner
                .nondet
                .add("kernel.memo_warp_cycles", s.kernel.memo_warp_cycles);
        }
    }

    /// Records one failed job execution (deterministic on the engine
    /// path: simulation errors and panics are pure functions of the
    /// job).
    pub fn record_job_failure(&self) {
        lock(&self.inner).det.add("exec.failed_jobs", 1);
    }

    /// Records one ILP solve: `nodes` branch & bound nodes explored,
    /// `fallback` when the bound degraded to fTC. Called from the
    /// single-threaded evaluation loop, so call order is deterministic.
    pub fn record_solve(&self, label: impl Into<String>, nodes: u64, fallback: bool) {
        let mut inner = lock(&self.inner);
        inner.det.add("ilp.solves", 1);
        if fallback {
            inner.det.add("ilp.fallback_ftc", 1);
        }
        inner.det.observe("ilp.nodes", nodes);
        inner.solves.push(SolveRec {
            label: label.into(),
            nodes,
            fallback,
        });
    }

    /// Folds the campaign counters in: replay/execute/retry counts are
    /// deterministic for a given journal state; watchdog expiries and
    /// journal I/O errors are host-dependent and recorded as
    /// non-deterministic.
    pub fn record_campaign(&self, stats: &CampaignStats) {
        let mut inner = lock(&self.inner);
        inner.det.add("campaign.replayed", stats.replayed);
        inner.det.add("campaign.executed", stats.executed);
        inner.det.add("campaign.retried", stats.retried);
        inner
            .det
            .add("campaign.injected_faults", stats.injected_faults);
        inner.nondet.add("campaign.timed_out", stats.timed_out);
        inner
            .nondet
            .add("campaign.journal_errors", stats.journal_errors);
    }

    /// Folds the engine report in: cache and simulation counts are
    /// deterministic; worker count and wall-clock go to the profile
    /// record.
    pub fn record_engine(&self, report: &EngineReport) {
        let mut inner = lock(&self.inner);
        inner.det.add("exec.cache_hits", report.cache_hits);
        inner.det.add("exec.cache_misses", report.cache_misses);
        inner
            .det
            .add("exec.simulations_run", report.simulations_run);
        inner
            .profile
            .push(("jobs".to_string(), Val::U64(report.jobs as u64)));
        inner
            .profile
            .push(("wall_seconds".to_string(), Val::F64(report.wall_seconds)));
    }

    /// Records a warning, deduplicated by `code`, and prints
    /// `warning: {message}` to stderr on the **first** occurrence only.
    /// This is the consolidated channel for every formerly ad-hoc
    /// stderr diagnostic.
    pub fn warn(&self, code: &str, message: impl Into<String>) {
        let message = message.into();
        if self.warn_quiet(code, message.clone()) {
            eprintln!("warning: {message}");
        }
    }

    /// Records a warning without printing (for diagnostics whose stderr
    /// rendering the caller owns, e.g. the fallback-rate report line).
    /// Returns `true` when this was the code's first occurrence.
    pub fn warn_quiet(&self, code: &str, message: impl Into<String>) -> bool {
        let mut inner = lock(&self.inner);
        match inner.warnings.get_mut(code) {
            Some(w) => {
                w.count += 1;
                false
            }
            None => {
                inner.warnings.insert(
                    code.to_string(),
                    Warning {
                        code: code.to_string(),
                        message: message.into(),
                        count: 1,
                    },
                );
                true
            }
        }
    }

    /// The run's folded attribution ledger: per-job matrices merged in
    /// ascending job-key order. All-zero when no recorded job carried
    /// one (attribution off, or no contention observed).
    pub fn attribution(&self) -> AttributionMatrix {
        let inner = lock(&self.inner);
        let mut total = AttributionMatrix::default();
        for m in inner.attribution.values() {
            total.merge(m);
        }
        total
    }

    /// The value of a deterministic counter (0 when never recorded).
    pub fn det_counter(&self, name: &str) -> u64 {
        lock(&self.inner).det.counter(name).unwrap_or(0)
    }

    /// Adds `delta` to a **non-deterministic** counter — the channel
    /// for load- and timing-dependent operational metrics (queue
    /// sheds, replays served, client disconnects) that must never leak
    /// into the deterministic subset.
    pub fn count(&self, name: &str, delta: u64) {
        lock(&self.inner).nondet.add(name, delta);
    }

    /// The value of a non-deterministic counter (0 when never
    /// recorded).
    pub fn nondet_counter(&self, name: &str) -> u64 {
        lock(&self.inner).nondet.counter(name).unwrap_or(0)
    }

    /// Number of deduplicated warning codes recorded so far.
    pub fn warning_count(&self) -> usize {
        lock(&self.inner).warnings.len()
    }

    /// Snapshot of every recorded warning (code order), counts
    /// included — the one-shot CLI uses this to print a repeat-count
    /// summary at exit.
    pub fn warnings(&self) -> Vec<Warning> {
        lock(&self.inner).warnings.values().cloned().collect()
    }

    /// Assembles the deterministic [`Stream`]: the `meta` record, a
    /// root span covering the run, one span per recorded job (key
    /// order, per-track cumulative logical starts), one span per solve
    /// on the solver track, and the metric registries.
    pub fn to_stream(&self) -> Stream {
        let inner = lock(&self.inner);
        let mut stream = Stream::new();
        stream.meta = vec![
            ("command".to_string(), Val::str(self.command.clone())),
            ("schema".to_string(), Val::U64(SCHEMA_VERSION)),
            (
                "harness_version".to_string(),
                Val::str(env!("CARGO_PKG_VERSION")),
            ),
        ];
        stream.meta.extend(inner.meta.iter().cloned());

        let root = span_id(0, &self.command, 0);
        let total_cycles: u64 = inner
            .jobs
            .values()
            .fold(0, |acc, j| acc.saturating_add(j.cycles));
        stream.spans.push(
            SpanRec::new(root, 0, self.command.clone(), 0, 0, total_cycles)
                .with_arg("kind", Val::str("run")),
        );
        // Jobs in key order; each track's spans are laid out end to end
        // so Chrome-trace timestamps stay monotonic per track.
        let mut cursor: BTreeMap<u32, u64> = BTreeMap::new();
        for (key, job) in &inner.jobs {
            let start = cursor.entry(job.track).or_insert(0);
            stream.spans.push(
                SpanRec::new(
                    span_id(root, &job.name, *key),
                    root,
                    job.name.clone(),
                    job.track,
                    *start,
                    job.cycles,
                )
                .with_arg("kind", Val::str(job.kind))
                .with_arg("key", Val::str(format!("{key:016x}"))),
            );
            *start = start.saturating_add(job.cycles.max(1));
        }
        let mut solve_cursor = 0u64;
        for (i, s) in inner.solves.iter().enumerate() {
            stream.spans.push(
                SpanRec::new(
                    span_id(root, &s.label, i as u64),
                    root,
                    s.label.clone(),
                    SOLVER_TRACK,
                    solve_cursor,
                    s.nodes,
                )
                .with_arg("kind", Val::str("solve"))
                .with_arg("fallback", Val::Bool(s.fallback)),
            );
            solve_cursor = solve_cursor.saturating_add(s.nodes.max(1));
        }

        let mut attr = AttributionMatrix::default();
        for m in inner.attribution.values() {
            attr.merge(m);
        }
        if !attr.is_zero() {
            stream.matrices = attribution_matrices(&attr);
        }

        stream.det = inner.det.clone();
        stream.nondet = inner.nondet.clone();
        stream.warnings = inner.warnings.values().cloned().collect();
        stream.profile = inner.profile.clone();
        stream
    }

    /// Renders the stream in the given format.
    pub fn render(&self, format: Format) -> String {
        let stream = self.to_stream();
        match format {
            Format::Jsonl => stream.render_jsonl(),
            Format::Chrome => stream.render_chrome(),
            Format::Summary => stream.render_summary(),
        }
    }

    /// Renders to the sink: a file at `spec.path`, or stderr when the
    /// path is `-`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the sink.
    pub fn flush(&self, spec: &SinkSpec) -> std::io::Result<()> {
        let rendered = self.render(spec.format);
        if spec.path == "-" {
            let mut err = std::io::stderr().lock();
            err.write_all(rendered.as_bytes())?;
            err.flush()
        } else {
            std::fs::write(&spec.path, rendered)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc27x_sim::CoreId;
    use workloads::control_loop;

    fn iso_job(seed: u64) -> SimJob {
        let mut spec = control_loop(tc27x_sim::DeploymentScenario::Scenario1, CoreId(1), 42);
        spec.seed = seed;
        SimJob::Isolation {
            spec,
            core: CoreId(1),
        }
    }

    #[test]
    fn job_spans_are_first_write_wins_and_key_ordered() {
        let t = Telemetry::new("test");
        t.record_job(9, &iso_job(2), 200, None);
        t.record_job(3, &iso_job(1), 100, None);
        t.record_job(9, &iso_job(2), 999, None); // duplicate key: ignored
        let stream = t.to_stream();
        // Root + two job spans.
        assert_eq!(stream.spans.len(), 3);
        assert_eq!(stream.spans[1].dur, 100, "key 3 first");
        assert_eq!(stream.spans[2].dur, 200, "duplicate kept the original");
        assert_eq!(stream.spans[0].dur, 300, "root covers the total");
        assert_eq!(t.det_counter("exec.jobs_recorded"), 3);
    }

    #[test]
    fn record_order_does_not_change_the_stream() {
        let record = |order: &[u64]| {
            let t = Telemetry::new("test");
            for &k in order {
                t.record_job(k, &iso_job(k), 10 * k, None);
                t.record_solve("solve:x", 50, false);
            }
            t.to_stream()
        };
        let a = record(&[1, 2, 3]);
        let b = record(&[3, 1, 2]);
        assert_eq!(a.render_jsonl(), b.render_jsonl());
    }

    #[test]
    fn sri_stats_are_det_and_kernel_stats_nondet() {
        let mut stats = SimStats::default();
        stats.slaves[SriTarget::Lmu.index()].served = 4;
        stats.slaves[SriTarget::Lmu.index()].delay_hist.observe(11);
        stats.kernel.ff_jumps = 2;
        stats.kernel.gap_hist.observe(40);
        stats.kernel.memo_hits = 7;
        stats.kernel.memo_records = 3;
        stats.kernel.memo_warp_cycles = 90;
        let t = Telemetry::new("test");
        t.record_job(1, &iso_job(1), 100, Some(&stats));
        let stream = t.to_stream();
        assert_eq!(stream.det.counter("sri.lmu.served"), Some(4));
        assert_eq!(
            stream.det.hist("sri.lmu.queue_delay").map(|h| h.count()),
            Some(1)
        );
        assert_eq!(stream.nondet.counter("kernel.ff_jumps"), Some(2));
        assert!(stream.det.counter("kernel.ff_jumps").is_none());
        assert_eq!(stream.nondet.counter("kernel.memo_hits"), Some(7));
        assert_eq!(stream.nondet.counter("kernel.memo_records"), Some(3));
        assert_eq!(stream.nondet.counter("kernel.memo_warp_cycles"), Some(90));
        assert!(
            stream.det.counter("kernel.memo_hits").is_none(),
            "memo stats are kernel-dependent, never part of the det subset"
        );
    }

    #[test]
    fn attribution_folds_in_key_order_and_renders_matrices() {
        let mut a = SimStats::default();
        a.attribution.charge(3, 0, 1, AccessClass::Data, 11);
        a.attribution.note_grant(3, 0, AccessClass::Data, 11);
        let mut b = SimStats::default();
        b.attribution.charge(0, 0, 2, AccessClass::Code, 16);
        b.attribution.note_grant(0, 0, AccessClass::Code, 16);
        let record = |order: &[(u64, &SimStats)]| {
            let t = Telemetry::new("test");
            for &(k, s) in order {
                t.record_job(k, &iso_job(k), 100, Some(s));
            }
            t
        };
        let fwd = record(&[(1, &a), (2, &b)]);
        let rev = record(&[(2, &b), (1, &a)]);
        assert_eq!(fwd.attribution(), rev.attribution());
        assert_eq!(
            fwd.to_stream().render_jsonl(),
            rev.to_stream().render_jsonl()
        );
        let stream = fwd.to_stream();
        let names: Vec<&str> = stream.matrices.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "attribution.grants",
                "attribution.interference",
                "attribution.max_wait",
                "attribution.wait"
            ]
        );
        let wait = stream.matrices.last().unwrap();
        assert_eq!(wait.rows.len() * wait.cols.len(), wait.cells.len());
        assert_eq!(wait.cells.iter().sum::<u64>(), 27, "conservation: 11 + 16");
        // No attribution recorded: no matrix records at all.
        let off = Telemetry::new("test");
        off.record_job(1, &iso_job(1), 100, Some(&SimStats::default()));
        assert!(off.to_stream().matrices.is_empty());
        assert!(off.attribution().is_zero());
    }

    #[test]
    fn warnings_dedup_by_code() {
        let t = Telemetry::new("test");
        assert!(t.warn_quiet("x.y", "first message"));
        assert!(!t.warn_quiet("x.y", "second message"));
        t.warn_quiet("a.b", "other");
        assert_eq!(t.warning_count(), 2);
        let stream = t.to_stream();
        assert_eq!(stream.warnings.len(), 2);
        assert_eq!(stream.warnings[0].code, "a.b", "code order");
        assert_eq!(stream.warnings[1].count, 2);
        assert_eq!(stream.warnings[1].message, "first message");
    }

    #[test]
    fn solves_and_fallbacks_are_counted() {
        let t = Telemetry::new("test");
        t.record_solve("solve:ilp:a-vs-b", 1000, false);
        t.record_solve("solve:ilp:a-vs-c", 500_000, true);
        assert_eq!(t.det_counter("ilp.solves"), 2);
        assert_eq!(t.det_counter("ilp.fallback_ftc"), 1);
        let stream = t.to_stream();
        let solver_spans: Vec<_> = stream
            .spans
            .iter()
            .filter(|s| s.track == SOLVER_TRACK)
            .collect();
        assert_eq!(solver_spans.len(), 2);
        assert_eq!(solver_spans[1].start, 1000, "cumulative node timeline");
    }

    #[test]
    fn profile_fields_never_reach_det_records() {
        let t = Telemetry::new("test");
        t.record_engine(&EngineReport {
            jobs: 4,
            simulations_run: 2,
            cache_hits: 1,
            cache_misses: 2,
            wall_seconds: 0.5,
        });
        let jsonl = t.render(Format::Jsonl);
        for line in jsonl.lines().filter(|l| l.contains("\"det\":true")) {
            assert!(
                !line.contains("wall"),
                "det record leaks wall clock: {line}"
            );
            assert!(!line.contains("\"jobs\""), "det record leaks jobs: {line}");
        }
        assert!(jsonl.contains("\"wall_seconds\":0.5"));
    }

    #[test]
    fn chrome_render_parses_and_flush_writes_files() {
        let t = Telemetry::new("flush-test");
        t.record_job(1, &iso_job(1), 100, None);
        let doc = t.render(Format::Chrome);
        assert!(obs::json::parse(&doc).is_ok());
        let mut path = std::env::temp_dir();
        path.push(format!("mbta-telemetry-{}.jsonl", std::process::id()));
        let spec = SinkSpec {
            path: path.display().to_string(),
            format: Format::Jsonl,
        };
        t.flush(&spec).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, t.render(Format::Jsonl));
        std::fs::remove_file(&path).ok();
    }
}
