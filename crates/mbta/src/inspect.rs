//! Record-by-record inspection of journal and store files — the chaos
//! triage view.
//!
//! [`Journal::resume`](crate::Journal::resume) and
//! [`Store::open`](crate::Store::open) are deliberately opinionated:
//! they truncate torn tails and refuse interior corruption. When a
//! chaos run (or a real incident) leaves a suspicious file behind,
//! operators need the opposite — a **lenient, read-only dump** that
//! shows every line's checksum verdict, byte offset and length, and
//! where a torn tail starts, without modifying the file or stopping at
//! the first problem. That is what [`inspect_path`] provides and the
//! `journal-inspect` bin renders.

use crate::journal::check_frame;
use std::io;
use std::path::{Path, PathBuf};

/// Which on-disk format the header announces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// `mbta-journal v1` — campaign outcome journal.
    Journal,
    /// `mbta-store v1` — content-addressed key/value store.
    Store,
    /// No recognisable header (foreign or damaged file).
    Unknown,
}

impl FileKind {
    /// Display token.
    pub fn tag(self) -> &'static str {
        match self {
            FileKind::Journal => "journal",
            FileKind::Store => "store",
            FileKind::Unknown => "unknown",
        }
    }
}

/// One scanned line.
#[derive(Clone, Debug)]
pub struct RecordInfo {
    /// 1-based line number (line 1 is the header).
    pub line: usize,
    /// Byte offset of the line start within the file.
    pub offset: u64,
    /// Line length in bytes, trailing newline excluded.
    pub length: usize,
    /// Whether the line ended with a newline (a missing one on the
    /// final line is the signature of a torn append).
    pub terminated: bool,
    /// Whether the `<crc16hex> <body>` frame verified.
    pub crc_ok: bool,
    /// The record key parsed from the body's leading field (`None` for
    /// the header and for lines whose body is not a record).
    pub key: Option<u64>,
    /// The record body (checksum field stripped) when the frame
    /// verified, otherwise the raw line.
    pub body: String,
}

/// Where a torn tail starts, when the final line is damaged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset at which recovery would truncate the file.
    pub offset: u64,
    /// Bytes from there to end-of-file.
    pub bytes: u64,
}

/// The full scan result of one file.
#[derive(Clone, Debug)]
pub struct InspectReport {
    /// The inspected path.
    pub path: PathBuf,
    /// Format announced by the header.
    pub kind: FileKind,
    /// Every line, in file order (header included).
    pub records: Vec<RecordInfo>,
    /// Lines whose checksum verified (header included).
    pub intact: usize,
    /// Lines whose checksum failed *before* the final line — interior
    /// corruption, which recovery refuses.
    pub interior_bad: usize,
    /// Damaged or unterminated final line — what recovery would
    /// truncate away.
    pub torn_tail: Option<TornTail>,
}

impl InspectReport {
    /// One-line verdict for the file.
    pub fn verdict(&self) -> String {
        let state = if self.interior_bad > 0 {
            "INTERIOR CORRUPTION (recovery would refuse this file)".to_string()
        } else if let Some(t) = self.torn_tail {
            format!(
                "torn tail at byte {} ({} byte(s); recovery would truncate)",
                t.offset, t.bytes
            )
        } else {
            "clean".to_string()
        };
        format!(
            "{}: {} · {} line(s), {} intact · {state}",
            self.path.display(),
            self.kind.tag(),
            self.records.len(),
            self.intact,
        )
    }

    /// One grep-stable counts line for `--summary` mode: data-record
    /// count (header excluded), CRC-ok ratio over every line, and the
    /// byte offset recovery would truncate at (`-` when the tail is
    /// whole).
    pub fn summary_line(&self) -> String {
        let lines = self.records.len();
        let crc_ok = self.records.iter().filter(|r| r.crc_ok).count();
        let permille = (crc_ok * 1000).checked_div(lines).unwrap_or(1000);
        let tail = match self.torn_tail {
            Some(t) => t.offset.to_string(),
            None => "-".to_string(),
        };
        format!(
            "  records {} · crc-ok {crc_ok}/{lines} ({permille} permille) · torn-tail offset {tail}",
            lines.saturating_sub(1),
        )
    }
}

/// Scans `path` without modifying it. Never fails on content — only on
/// I/O. An empty file yields an empty report of [`FileKind::Unknown`].
///
/// # Errors
///
/// Propagates file-read errors.
pub fn inspect_path(path: &Path) -> io::Result<InspectReport> {
    let raw = std::fs::read(path)?;
    let text = String::from_utf8_lossy(&raw);
    let mut records = Vec::new();
    let mut intact = 0usize;
    let mut interior_bad = 0usize;
    let mut torn_tail = None;
    let mut kind = FileKind::Unknown;

    // Mirror the recovery scan: split into (line, terminated) segments
    // so a missing trailing newline stays visible.
    let mut segments: Vec<(&str, bool)> = Vec::new();
    let mut rest: &str = &text;
    while let Some(pos) = rest.find('\n') {
        segments.push((&rest[..pos], true));
        rest = &rest[pos + 1..];
    }
    if !rest.is_empty() {
        segments.push((rest, false));
    }

    let last = segments.len().saturating_sub(1);
    let mut offset = 0u64;
    for (i, (line, terminated)) in segments.iter().enumerate() {
        let framed = check_frame(line);
        let crc_ok = framed.is_ok();
        let body = match framed {
            Ok(b) => b.to_string(),
            Err(_) => (*line).to_string(),
        };
        if i == 0 && crc_ok {
            kind = if body.starts_with("mbta-journal v1") {
                FileKind::Journal
            } else if body.starts_with("mbta-store v1") {
                FileKind::Store
            } else {
                FileKind::Unknown
            };
        }
        let damaged = !crc_ok || !terminated;
        if !damaged {
            intact += 1;
        } else if i == last {
            torn_tail = Some(TornTail {
                offset,
                bytes: raw.len() as u64 - offset,
            });
        } else {
            interior_bad += 1;
        }
        let key = if i == 0 {
            None
        } else {
            body.split(' ')
                .next()
                .filter(|f| f.len() == 16)
                .and_then(|f| u64::from_str_radix(f, 16).ok())
        };
        records.push(RecordInfo {
            line: i + 1,
            offset,
            length: line.len(),
            terminated: *terminated,
            crc_ok,
            key,
            body,
        });
        offset += line.len() as u64 + u64::from(*terminated);
    }

    Ok(InspectReport {
        path: path.to_path_buf(),
        kind,
        records,
        intact,
        interior_bad,
        torn_tail,
    })
}

/// Renders a report the way the `journal-inspect` bin prints it: the
/// verdict line, then either the `--summary` counts line (record
/// count, CRC-ok ratio, torn-tail offset) or one line per record with
/// offset, length, CRC status, key and body.
pub fn render(report: &InspectReport, summary_only: bool) -> String {
    let mut out = report.verdict();
    out.push('\n');
    if summary_only {
        out.push_str(&report.summary_line());
        out.push('\n');
        return out;
    }
    for r in &report.records {
        let status = if r.crc_ok && r.terminated {
            "ok  "
        } else if !r.crc_ok {
            "BAD "
        } else {
            "TORN"
        };
        let key = match r.key {
            Some(k) => format!("{k:016x}"),
            None => "-".repeat(16),
        };
        out.push_str(&format!(
            "  line {:>4} @{:>8} len {:>5} crc {status} key {key}  {}\n",
            r.line, r.offset, r.length, r.body
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::SimOutcome;
    use crate::journal::Journal;
    use crate::store::Store;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mbta-inspect-unit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn clean_journal_reports_every_record_intact() {
        let path = tmp("clean");
        let journal = Journal::create(&path, 0xc0ffee).unwrap();
        journal.append(0x11, 0, &Ok(SimOutcome::Corun(10))).unwrap();
        journal.append(0x22, 1, &Ok(SimOutcome::Corun(20))).unwrap();
        drop(journal);
        let report = inspect_path(&path).unwrap();
        assert_eq!(report.kind, FileKind::Journal);
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.intact, 3);
        assert_eq!(report.interior_bad, 0);
        assert_eq!(report.torn_tail, None);
        assert_eq!(report.records[1].key, Some(0x11));
        assert_eq!(report.records[2].key, Some(0x22));
        assert!(report.verdict().contains("clean"));
        let rendered = render(&report, false);
        assert!(rendered.contains("ok corun 10"), "{rendered}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_position_matches_recovery_truncation() {
        let path = tmp("torn");
        let journal = Journal::create(&path, 7).unwrap();
        journal.append(0x1, 0, &Ok(SimOutcome::Corun(10))).unwrap();
        journal.append(0x2, 0, &Ok(SimOutcome::Corun(20))).unwrap();
        drop(journal);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 9]).unwrap();

        let report = inspect_path(&path).unwrap();
        let torn = report.torn_tail.expect("tail must be reported torn");
        assert_eq!(report.interior_bad, 0);
        // The reported offset is exactly where Journal::resume truncates.
        let (_, entries, recovery) = Journal::resume(&path, 7).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(recovery.truncated_bytes, torn.bytes);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), torn.offset);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interior_corruption_is_flagged_not_fatal() {
        let path = tmp("interior");
        let journal = Journal::create(&path, 7).unwrap();
        journal.append(0x1, 0, &Ok(SimOutcome::Corun(10))).unwrap();
        journal.append(0x2, 0, &Ok(SimOutcome::Corun(20))).unwrap();
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        let off = bytes.iter().position(|&b| b == b'\n').unwrap() + 20;
        bytes[off] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let report = inspect_path(&path).unwrap();
        assert_eq!(report.interior_bad, 1);
        assert!(report.verdict().contains("INTERIOR CORRUPTION"));
        assert!(render(&report, false).contains("BAD"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summary_mode_counts_records_crc_ratio_and_torn_offset() {
        let path = tmp("summary");
        let journal = Journal::create(&path, 9).unwrap();
        journal.append(0x1, 0, &Ok(SimOutcome::Corun(10))).unwrap();
        journal.append(0x2, 0, &Ok(SimOutcome::Corun(20))).unwrap();
        drop(journal);

        // Clean file: 2 data records, every line CRC-ok, no tail.
        let clean = render(&inspect_path(&path).unwrap(), true);
        assert_eq!(clean.lines().count(), 2, "verdict + counts: {clean}");
        assert!(
            clean.contains("records 2 · crc-ok 3/3 (1000 permille) · torn-tail offset -"),
            "{clean}"
        );
        assert!(!clean.contains("line 1"), "per-record dump leaked: {clean}");

        // Tear the tail and the counts line must name the truncation
        // offset recovery would use.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 9]).unwrap();
        let report = inspect_path(&path).unwrap();
        let torn = report.torn_tail.unwrap();
        let summary = render(&report, true);
        assert!(
            summary.contains(&format!("torn-tail offset {}", torn.offset)),
            "{summary}"
        );
        assert!(summary.contains("crc-ok 2/3 (666 permille)"), "{summary}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn store_files_are_recognised_and_keyed() {
        let path = tmp("store");
        let store = Store::create(&path, "inspect-test", 42).unwrap();
        store.put(0xabc, "hello world").unwrap();
        drop(store);
        let report = inspect_path(&path).unwrap();
        assert_eq!(report.kind, FileKind::Store);
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.records[1].key, Some(0xabc));
        assert!(report.torn_tail.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_and_empty_files_do_not_error() {
        let path = tmp("foreign");
        std::fs::write(&path, "intensity_permille,ftc_ratio\n0,1.0\n").unwrap();
        let report = inspect_path(&path).unwrap();
        assert_eq!(report.kind, FileKind::Unknown);
        assert!(report.records.iter().all(|r| !r.crc_ok));
        std::fs::write(&path, "").unwrap();
        let report = inspect_path(&path).unwrap();
        assert!(report.records.is_empty());
        assert_eq!(report.torn_tail, None);
        std::fs::remove_file(&path).ok();
    }
}
