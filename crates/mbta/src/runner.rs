//! Isolation runs and profile extraction — the measurement side of
//! measurement-based timing analysis.

use contention::{AccessCounts, IsolationProfile};
use tc27x_sim::{CoreId, SimError, System, TaskSpec};

/// Converts simulator counter readings into the model-side type.
pub fn to_model_counters(c: tc27x_sim::DebugCounters) -> contention::DebugCounters {
    contention::DebugCounters {
        ccnt: c.ccnt,
        pmem_stall: c.pmem_stall,
        dmem_stall: c.dmem_stall,
        pcache_miss: c.pcache_miss,
        dcache_miss_clean: c.dcache_miss_clean,
        dcache_miss_dirty: c.dcache_miss_dirty,
    }
}

/// Converts simulator ground truth into model-side access counts.
pub fn to_model_counts(g: tc27x_sim::GroundTruth) -> AccessCounts {
    use contention::{Operation, Target};
    AccessCounts::from_fn(|t, o| {
        let st = match t {
            Target::Pf0 => tc27x_sim::SriTarget::Pf0,
            Target::Pf1 => tc27x_sim::SriTarget::Pf1,
            Target::Dfl => tc27x_sim::SriTarget::Dfl,
            Target::Lmu => tc27x_sim::SriTarget::Lmu,
        };
        let so = match o {
            Operation::Code => tc27x_sim::AccessClass::Code,
            Operation::Data => tc27x_sim::AccessClass::Data,
        };
        g.accesses(st, so)
    })
}

/// Runs `spec` alone on a fresh TC277 and returns its isolation profile
/// (debug counters plus simulator ground-truth PTAC, which only the
/// ideal model consumes).
///
/// # Errors
///
/// Propagates link and simulation errors.
///
/// # Examples
///
/// ```
/// use mbta::isolation_profile;
/// use tc27x_sim::{CoreId, DeploymentScenario};
/// use workloads::control_loop;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app = control_loop(DeploymentScenario::Scenario1, CoreId(1), 42);
/// let profile = isolation_profile(&app, CoreId(1))?;
/// assert!(profile.counters().ccnt > 0);
/// # Ok(())
/// # }
/// ```
pub fn isolation_profile(spec: &TaskSpec, core: CoreId) -> Result<IsolationProfile, SimError> {
    isolation_profile_budgeted(spec, core, None)
}

/// [`isolation_profile`] with an optional per-job cycle budget: when
/// `max_cycles` is `Some`, the run aborts with
/// [`SimError::CycleLimit`] at that many simulated cycles instead of
/// the default half-billion cap. Campaign runners use this so a
/// runaway synthetic program fails fast and deterministically.
///
/// A budget never changes a *successful* profile — the simulator is
/// deterministic and the budget only decides how long a run may take —
/// so budgeted and unbudgeted successes are interchangeable.
///
/// # Errors
///
/// Propagates link and simulation errors.
pub fn isolation_profile_budgeted(
    spec: &TaskSpec,
    core: CoreId,
    max_cycles: Option<u64>,
) -> Result<IsolationProfile, SimError> {
    isolation_profile_on(spec, core, max_cycles, tc27x_sim::Engine::default())
}

/// [`isolation_profile_budgeted`] on an explicit simulator timing
/// kernel. The kernels are bit-identical, so the choice never changes
/// the profile — only how fast it is produced.
///
/// # Errors
///
/// Propagates link and simulation errors.
pub fn isolation_profile_on(
    spec: &TaskSpec,
    core: CoreId,
    max_cycles: Option<u64>,
    engine: tc27x_sim::Engine,
) -> Result<IsolationProfile, SimError> {
    isolation_profile_stats(
        spec,
        core,
        max_cycles,
        engine,
        true,
        false,
        ::platform::default_platform(),
    )
    .map(|(p, _)| p)
}

/// [`isolation_profile`] on an explicit platform description: the run
/// happens on the machine the description parameterizes — its cores,
/// slave topology and arbitration — instead of the reference TC277.
///
/// # Errors
///
/// Propagates link and simulation errors (including placements on
/// slaves the description does not provide).
pub fn isolation_profile_for(
    spec: &TaskSpec,
    core: CoreId,
    desc: &::platform::PlatformDesc,
) -> Result<IsolationProfile, SimError> {
    isolation_profile_stats(
        spec,
        core,
        None,
        tc27x_sim::Engine::default(),
        true,
        false,
        desc,
    )
    .map(|(p, _)| p)
}

/// [`isolation_profile_on`] that also snapshots the simulator's
/// post-run statistics ([`tc27x_sim::SimStats`]) for the telemetry
/// layer, with explicit control over the event kernel's block memo
/// (a pure speed knob — both settings are bit-identical).
#[allow(clippy::too_many_arguments)]
pub(crate) fn isolation_profile_stats(
    spec: &TaskSpec,
    core: CoreId,
    max_cycles: Option<u64>,
    engine: tc27x_sim::Engine,
    block_memo: bool,
    attribution: bool,
    desc: &::platform::PlatformDesc,
) -> Result<(IsolationProfile, tc27x_sim::SimStats), SimError> {
    let mut config = tc27x_sim::SimConfig::from_platform(desc)
        .with_engine(engine)
        .with_block_memo(block_memo)
        .with_attribution(attribution);
    if let Some(limit) = max_cycles {
        config = config.with_max_cycles(limit);
    }
    let mut sys = System::with_config(config);
    sys.load(core, spec)?;
    let out = sys.run()?;
    let profile = IsolationProfile::new(spec.name.clone(), to_model_counters(out.counters(core)))
        .with_ptac(to_model_counts(out.ground_truth(core)));
    Ok((profile, sys.stats()))
}

/// A high-water-mark measurement campaign: the task is run `runs` times
/// with perturbed seeds (standard MBTA input variation) and the
/// *envelope* of all counter readings is kept — each counter's maximum
/// across runs, the conservative direction for every model input.
#[derive(Clone, Debug)]
pub struct HwmMeasurement {
    /// Envelope profile (per-counter maxima).
    pub profile: IsolationProfile,
    /// Execution times of the individual runs.
    pub ccnt_per_run: Vec<u64>,
}

impl HwmMeasurement {
    /// The observed execution-time high-water mark.
    pub fn ccnt_hwm(&self) -> u64 {
        self.ccnt_per_run.iter().copied().max().unwrap_or(0)
    }
}

/// Runs the MBTA campaign for `spec`: `runs` isolation runs with seeds
/// `seed₀ … seed₀+runs-1`, envelope over counters. Executes
/// sequentially; use [`hwm_campaign_with`] to share an
/// [`crate::ExecEngine`].
///
/// # Errors
///
/// Propagates link and simulation errors.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn hwm_campaign(
    spec: &TaskSpec,
    core: CoreId,
    runs: u32,
) -> Result<HwmMeasurement, crate::JobError> {
    hwm_campaign_with(&crate::ExecEngine::sequential(), spec, core, runs)
}

/// [`hwm_campaign`] on a caller-supplied engine: the seed-varied runs
/// are independent, so they go out as one batch and spread across the
/// engine's workers. The envelope fold runs on the index-ordered
/// results, so it is identical for any worker count.
///
/// # Errors
///
/// Propagates link and simulation errors.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn hwm_campaign_with(
    engine: &crate::ExecEngine,
    spec: &TaskSpec,
    core: CoreId,
    runs: u32,
) -> Result<HwmMeasurement, crate::JobError> {
    assert!(runs > 0, "a campaign needs at least one run");
    let batch: Vec<crate::SimJob> = (0..runs)
        .map(|r| {
            let mut varied = spec.clone();
            varied.seed = spec.seed.wrapping_add(r as u64);
            crate::SimJob::Isolation { spec: varied, core }
        })
        .collect();
    let mut envelope = contention::DebugCounters::default();
    let mut ptac = AccessCounts::new();
    let mut ccnts = Vec::with_capacity(runs as usize);
    for outcome in engine.run_batch(&batch)? {
        let p = outcome.into_profile();
        let c = *p.counters();
        envelope.ccnt = envelope.ccnt.max(c.ccnt);
        envelope.pmem_stall = envelope.pmem_stall.max(c.pmem_stall);
        envelope.dmem_stall = envelope.dmem_stall.max(c.dmem_stall);
        envelope.pcache_miss = envelope.pcache_miss.max(c.pcache_miss);
        envelope.dcache_miss_clean = envelope.dcache_miss_clean.max(c.dcache_miss_clean);
        envelope.dcache_miss_dirty = envelope.dcache_miss_dirty.max(c.dcache_miss_dirty);
        let g = p
            .ptac()
            .unwrap_or_else(|| unreachable!("isolation profiles carry ground truth"));
        ptac = AccessCounts::from_fn(|t, o| ptac.get(t, o).max(g.get(t, o)));
        ccnts.push(c.ccnt);
    }
    Ok(HwmMeasurement {
        profile: IsolationProfile::new(spec.name.clone(), envelope).with_ptac(ptac),
        ccnt_per_run: ccnts,
    })
}

/// Runs the app on `app_core` against a contender on `load_core` and
/// returns the app's observed co-run execution time.
///
/// # Errors
///
/// Propagates link and simulation errors.
pub fn observed_corun(
    app: &TaskSpec,
    app_core: CoreId,
    load: &TaskSpec,
    load_core: CoreId,
) -> Result<u64, SimError> {
    observed_corun_budgeted(app, app_core, load, load_core, None)
}

/// [`observed_corun`] with an optional per-job cycle budget (see
/// [`isolation_profile_budgeted`] for the budget semantics).
///
/// # Errors
///
/// Propagates link and simulation errors.
pub fn observed_corun_budgeted(
    app: &TaskSpec,
    app_core: CoreId,
    load: &TaskSpec,
    load_core: CoreId,
    max_cycles: Option<u64>,
) -> Result<u64, SimError> {
    observed_corun_on(
        app,
        app_core,
        load,
        load_core,
        max_cycles,
        tc27x_sim::Engine::default(),
    )
}

/// [`observed_corun_budgeted`] on an explicit simulator timing kernel
/// (see [`isolation_profile_on`] for the engine semantics).
///
/// # Errors
///
/// Propagates link and simulation errors.
pub fn observed_corun_on(
    app: &TaskSpec,
    app_core: CoreId,
    load: &TaskSpec,
    load_core: CoreId,
    max_cycles: Option<u64>,
    engine: tc27x_sim::Engine,
) -> Result<u64, SimError> {
    observed_corun_stats(
        app,
        app_core,
        load,
        load_core,
        max_cycles,
        engine,
        true,
        false,
        ::platform::default_platform(),
    )
    .map(|(c, _)| c)
}

/// [`observed_corun`] on an explicit platform description (see
/// [`isolation_profile_for`]).
///
/// # Errors
///
/// Propagates link and simulation errors.
pub fn observed_corun_for(
    app: &TaskSpec,
    app_core: CoreId,
    load: &TaskSpec,
    load_core: CoreId,
    desc: &::platform::PlatformDesc,
) -> Result<u64, SimError> {
    observed_corun_stats(
        app,
        app_core,
        load,
        load_core,
        None,
        tc27x_sim::Engine::default(),
        true,
        false,
        desc,
    )
    .map(|(c, _)| c)
}

/// [`observed_corun_on`] that also snapshots the simulator's post-run
/// statistics ([`tc27x_sim::SimStats`]) for the telemetry layer, with
/// explicit control over the event kernel's block memo.
#[allow(clippy::too_many_arguments)]
pub(crate) fn observed_corun_stats(
    app: &TaskSpec,
    app_core: CoreId,
    load: &TaskSpec,
    load_core: CoreId,
    max_cycles: Option<u64>,
    engine: tc27x_sim::Engine,
    block_memo: bool,
    attribution: bool,
    desc: &::platform::PlatformDesc,
) -> Result<(u64, tc27x_sim::SimStats), SimError> {
    let mut config = tc27x_sim::SimConfig::from_platform(desc)
        .with_engine(engine)
        .with_block_memo(block_memo)
        .with_attribution(attribution);
    if let Some(limit) = max_cycles {
        config = config.with_max_cycles(limit);
    }
    let mut sys = System::with_config(config);
    sys.load(app_core, app)?;
    sys.load(load_core, load)?;
    let out = sys.run_until(app_core)?;
    Ok((out.counters(app_core).ccnt, sys.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc27x_sim::DeploymentScenario;
    use workloads::{contender, control_loop, LoadLevel};

    #[test]
    fn isolation_profile_carries_ptac() {
        let core = CoreId(1);
        let app = control_loop(DeploymentScenario::LowTraffic, core, 1);
        let p = isolation_profile(&app, core).unwrap();
        assert!(p.ptac().is_some());
        assert!(p.counters().ccnt > 0);
        assert_eq!(p.name(), "cruise-control-low");
    }

    #[test]
    fn hwm_envelope_dominates_every_run() {
        let core = CoreId(1);
        let app = control_loop(DeploymentScenario::Scenario1, core, 10);
        let m = hwm_campaign(&app, core, 4).unwrap();
        assert_eq!(m.ccnt_per_run.len(), 4);
        for c in &m.ccnt_per_run {
            assert!(m.profile.counters().ccnt >= *c);
        }
        assert_eq!(m.ccnt_hwm(), *m.ccnt_per_run.iter().max().unwrap());
    }

    #[test]
    fn hwm_campaign_is_worker_count_invariant() {
        let core = CoreId(1);
        let app = control_loop(DeploymentScenario::Scenario1, core, 10);
        let seq = hwm_campaign(&app, core, 4).unwrap();
        let par = hwm_campaign_with(&crate::ExecEngine::new(4), &app, core, 4).unwrap();
        assert_eq!(seq.ccnt_per_run, par.ccnt_per_run);
        assert_eq!(seq.profile.counters(), par.profile.counters());
        assert_eq!(seq.profile.ptac(), par.profile.ptac());
    }

    #[test]
    fn corun_is_slower_than_isolation() {
        let (a, b) = (CoreId(1), CoreId(2));
        let app = control_loop(DeploymentScenario::Scenario1, a, 42);
        let load = contender(DeploymentScenario::Scenario1, LoadLevel::High, b, 7);
        let iso = isolation_profile(&app, a).unwrap().counters().ccnt;
        let co = observed_corun(&app, a, &load, b).unwrap();
        assert!(co > iso, "co-run {co} must exceed isolation {iso}");
    }

    #[test]
    fn cycle_budget_aborts_or_matches_the_unbudgeted_run() {
        let core = CoreId(1);
        let app = control_loop(DeploymentScenario::Scenario1, core, 42);
        // A starvation budget aborts deterministically…
        let err = isolation_profile_budgeted(&app, core, Some(10)).unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { limit: 10 }));
        // …while a sufficient budget reproduces the unbudgeted profile
        // bit for bit.
        let free = isolation_profile(&app, core).unwrap();
        let budgeted =
            isolation_profile_budgeted(&app, core, Some(free.counters().ccnt + 1)).unwrap();
        assert_eq!(budgeted.counters(), free.counters());
        assert_eq!(budgeted.ptac(), free.ptac());
    }

    #[test]
    fn profiles_are_engine_invariant() {
        let (a, b) = (CoreId(1), CoreId(2));
        let app = control_loop(DeploymentScenario::Scenario1, a, 42);
        let load = contender(DeploymentScenario::Scenario1, LoadLevel::High, b, 7);
        let tick = isolation_profile_on(&app, a, None, tc27x_sim::Engine::Tick).unwrap();
        let event = isolation_profile_on(&app, a, None, tc27x_sim::Engine::Event).unwrap();
        assert_eq!(tick.counters(), event.counters());
        assert_eq!(tick.ptac(), event.ptac());
        let co_tick = observed_corun_on(&app, a, &load, b, None, tc27x_sim::Engine::Tick).unwrap();
        let co_event =
            observed_corun_on(&app, a, &load, b, None, tc27x_sim::Engine::Event).unwrap();
        assert_eq!(co_tick, co_event);
    }

    #[test]
    fn counter_conversion_is_field_exact() {
        let c = tc27x_sim::DebugCounters {
            ccnt: 1,
            pmem_stall: 2,
            dmem_stall: 3,
            pcache_miss: 4,
            dcache_miss_clean: 5,
            dcache_miss_dirty: 6,
        };
        let m = to_model_counters(c);
        assert_eq!(
            (
                m.ccnt,
                m.pmem_stall,
                m.dmem_stall,
                m.pcache_miss,
                m.dcache_miss_clean,
                m.dcache_miss_dirty
            ),
            (1, 2, 3, 4, 5, 6)
        );
    }
}
