//! Plain-text table rendering for the experiment binaries.

use std::fmt::Write as _;

/// A simple left-padded ASCII table.
///
/// # Examples
///
/// ```
/// use mbta::report::Table;
///
/// let mut t = Table::new(vec!["model", "ratio"]);
/// t.row(vec!["fTC".into(), "1.95".into()]);
/// t.row(vec!["ILP-PTAC".into(), "1.49".into()]);
/// let s = t.render();
/// assert!(s.contains("ILP-PTAC"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<impl Into<String>>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let rule = |out: &mut String| {
            for w in &widths {
                let _ = write!(out, "+{}", "-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        let line = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                let _ = write!(out, "| {:w$} ", cells[i], w = widths[i]);
            }
            out.push_str("|\n");
        };
        rule(&mut out);
        line(&mut out, &self.headers);
        rule(&mut out);
        for row in &self.rows {
            line(&mut out, row);
        }
        rule(&mut out);
        out
    }
}

/// Formats a ratio like the paper's Figure 4 annotations (e.g. "1.49").
pub fn ratio(value: f64) -> String {
    format!("{value:.2}")
}

/// The reproducibility footer appended under the Figure 4 / Table 6
/// tables: how the numbers above were obtained — ILP fallback rate,
/// campaign retries and the engine's memo-cache hit rate. Every input
/// is a deterministic telemetry counter, so the footer itself is
/// byte-identical across worker counts and timing kernels.
pub fn reproducibility_footer(telemetry: &crate::Telemetry) -> String {
    let solves = telemetry.det_counter("ilp.solves");
    let fallbacks = telemetry.det_counter("ilp.fallback_ftc");
    let retried = telemetry.det_counter("campaign.retried");
    let hits = telemetry.det_counter("exec.cache_hits");
    let misses = telemetry.det_counter("exec.cache_misses");
    let pct = |part: u64, whole: u64| {
        if whole == 0 {
            0.0
        } else {
            100.0 * part as f64 / whole as f64
        }
    };
    format!(
        "reproducibility: ilp fallback {fallbacks}/{solves} ({:.0}%), \
         retries {retried}, cache hits {hits}/{} ({:.0}%)\n",
        pct(fallbacks, solves),
        hits + misses,
        pct(hits, hits + misses),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // Frame + header + frame + row + frame.
        assert_eq!(lines.len(), 5);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "{s}");
        assert!(s.contains("long-header"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(1.4932), "1.49");
        assert_eq!(ratio(2.0), "2.00");
    }

    #[test]
    fn emptiness() {
        let t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn reproducibility_footer_reads_telemetry_counters() {
        let t = crate::Telemetry::new("test");
        t.record_solve("solve:a", 10, false);
        t.record_solve("solve:b", 20, true);
        let footer = reproducibility_footer(&t);
        assert!(footer.contains("ilp fallback 1/2 (50%)"), "{footer}");
        assert!(footer.contains("retries 0"), "{footer}");
        // An empty recorder renders zeros, not NaNs.
        let empty = reproducibility_footer(&crate::Telemetry::new("empty"));
        assert!(empty.contains("ilp fallback 0/0 (0%)"), "{empty}");
    }
}
