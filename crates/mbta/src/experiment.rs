//! The paper's evaluation protocol (§4.2): profile in isolation, feed
//! the models, validate against co-run observations.

use crate::exec::{BatchRunner, ExecEngine, JobError, SimJob};
use contention::{
    ContentionModel, FtcModel, IdealModel, IlpPtacModel, IsolationProfile, ModelError, Platform,
    ScenarioConstraints, WcetEstimate,
};
use std::error::Error;
use std::fmt;
use tc27x_sim::{CoreId, DeploymentScenario, SimError};
use workloads::{contender, control_loop, LoadLevel};

/// Errors from running an experiment.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExperimentError {
    /// Simulation failed.
    Sim(SimError),
    /// A model failed.
    Model(ModelError),
    /// A batched engine job failed (simulation error or contained
    /// panic), identified by its batch index.
    Job(JobError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Sim(e) => write!(f, "simulation failed: {e}"),
            ExperimentError::Model(e) => write!(f, "model failed: {e}"),
            ExperimentError::Job(e) => write!(f, "engine {e}"),
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Sim(e) => Some(e),
            ExperimentError::Model(e) => Some(e),
            ExperimentError::Job(e) => Some(e),
        }
    }
}

impl From<SimError> for ExperimentError {
    fn from(e: SimError) -> Self {
        ExperimentError::Sim(e)
    }
}

impl From<ModelError> for ExperimentError {
    fn from(e: ModelError) -> Self {
        ExperimentError::Model(e)
    }
}

impl From<JobError> for ExperimentError {
    fn from(e: JobError) -> Self {
        ExperimentError::Job(e)
    }
}

/// The scenario constraints matching a deployment scenario.
pub fn constraints_for(scenario: DeploymentScenario) -> ScenarioConstraints {
    match scenario {
        DeploymentScenario::Scenario1 | DeploymentScenario::LowTraffic => {
            ScenarioConstraints::scenario1()
        }
        DeploymentScenario::Scenario2 => ScenarioConstraints::scenario2(),
    }
}

/// One bar group of Figure 4: all model predictions for one contender
/// level, plus the observed co-run time for validation.
#[derive(Clone, Debug)]
pub struct Figure4Cell {
    /// Contender load level.
    pub level: LoadLevel,
    /// fTC model estimate (Eqs. 6–8).
    pub ftc: WcetEstimate,
    /// ILP-PTAC estimate (Eqs. 9–23, scenario-tailored).
    pub ilp: WcetEstimate,
    /// Ideal (full-PTAC) model estimate (Eq. 1) — simulator-only input.
    pub ideal: WcetEstimate,
    /// Observed app execution time co-running against this contender.
    pub observed_cycles: u64,
}

impl Figure4Cell {
    /// Observed execution-time increase w.r.t. isolation.
    pub fn observed_ratio(&self) -> f64 {
        self.observed_cycles as f64 / self.ftc.isolation_cycles.max(1) as f64
    }
}

/// A full Figure 4 panel: one deployment scenario across the three
/// contender levels.
#[derive(Clone, Debug)]
pub struct Figure4Panel {
    /// The deployment scenario.
    pub scenario: DeploymentScenario,
    /// The application's isolation profile.
    pub app: IsolationProfile,
    /// One cell per load level, lightest first.
    pub cells: Vec<Figure4Cell>,
}

impl Figure4Panel {
    /// Checks the paper's headline soundness claim: every model
    /// prediction upper-bounds the observed co-run execution time.
    pub fn all_bounds_sound(&self) -> bool {
        self.cells.iter().all(|c| {
            c.ftc.bound_cycles() >= c.observed_cycles
                && c.ilp.bound_cycles() >= c.observed_cycles
                && c.ideal.bound_cycles() >= c.observed_cycles
        })
    }
}

/// Runs the Figure 4 experiment for one scenario: app on the platform's
/// application core, contender on its load core (cores 1 and 2 on the
/// paper's TC277). Executes sequentially; use [`figure4_panel_with`] to
/// share an [`ExecEngine`].
///
/// # Errors
///
/// Propagates simulation and model errors.
pub fn figure4_panel(
    scenario: DeploymentScenario,
    platform: &Platform,
    seed: u64,
) -> Result<Figure4Panel, ExperimentError> {
    figure4_panel_with(&ExecEngine::sequential(), scenario, platform, seed)
}

/// [`figure4_panel`] on a caller-supplied runner: all seven simulations
/// of a panel (one app isolation, three contender isolations, three
/// co-runs) are submitted as one batch, so they spread across the
/// engine's workers and repeated profiles come from the memo cache.
/// Generic over [`BatchRunner`], so the same protocol runs on a plain
/// [`ExecEngine`] or a crash-safe [`crate::CampaignRunner`].
///
/// # Errors
///
/// Propagates simulation and model errors.
pub fn figure4_panel_with<R: BatchRunner + ?Sized>(
    engine: &R,
    scenario: DeploymentScenario,
    platform: &Platform,
    seed: u64,
) -> Result<Figure4Panel, ExperimentError> {
    let desc = engine.platform();
    let (app_core, load_core) = (CoreId(desc.app_core as u8), CoreId(desc.load_core as u8));
    let app_spec = control_loop(scenario, app_core, seed);

    let mut batch = vec![SimJob::Isolation {
        spec: app_spec.clone(),
        core: app_core,
    }];
    for level in LoadLevel::all() {
        let load_spec = contender(scenario, level, load_core, seed.wrapping_add(level as u64));
        batch.push(SimJob::Isolation {
            spec: load_spec.clone(),
            core: load_core,
        });
        batch.push(SimJob::Corun {
            app: app_spec.clone(),
            app_core,
            load: load_spec,
            load_core,
        });
    }
    let mut outcomes = engine.run_batch(&batch)?.into_iter();
    let app = next_outcome(&mut outcomes).into_profile();

    let ftc_model = match scenario {
        DeploymentScenario::Scenario2 => FtcModel::new(platform).assume_dirty_lmu(),
        _ => FtcModel::new(platform),
    };
    let ilp_model = IlpPtacModel::new(platform, constraints_for(scenario));
    let ideal_model = IdealModel::new(platform);

    let mut cells = Vec::new();
    for level in LoadLevel::all() {
        let load = next_outcome(&mut outcomes).into_profile();
        let observed = next_outcome(&mut outcomes).into_observed();
        cells.push(Figure4Cell {
            level,
            ftc: ftc_model.wcet_estimate(&app, &[&load])?,
            ilp: ilp_model.wcet_estimate(&app, &[&load])?,
            ideal: ideal_model.wcet_estimate(&app, &[&load])?,
            observed_cycles: observed,
        });
    }
    Ok(Figure4Panel {
        scenario,
        app,
        cells,
    })
}

/// A Table 6 block: counter readings of the application (core 1) and the
/// H-Load contender (core 2) for one scenario.
#[derive(Clone, Debug)]
pub struct Table6Block {
    /// The deployment scenario.
    pub scenario: DeploymentScenario,
    /// Application profile (core 1).
    pub core1: IsolationProfile,
    /// H-Load contender profile (core 2).
    pub core2: IsolationProfile,
}

/// Regenerates the Table 6 counter readings for one scenario.
/// Executes sequentially; use [`table6_block_with`] to share an
/// [`ExecEngine`].
///
/// # Errors
///
/// Propagates simulation errors.
pub fn table6_block(
    scenario: DeploymentScenario,
    seed: u64,
) -> Result<Table6Block, ExperimentError> {
    table6_block_with(&ExecEngine::sequential(), scenario, seed)
}

/// [`table6_block`] on a caller-supplied runner: both isolation runs go
/// out as one batch. Generic over [`BatchRunner`].
///
/// # Errors
///
/// Propagates simulation errors.
pub fn table6_block_with<R: BatchRunner + ?Sized>(
    engine: &R,
    scenario: DeploymentScenario,
    seed: u64,
) -> Result<Table6Block, ExperimentError> {
    let desc = engine.platform();
    let (c1, c2) = (CoreId(desc.app_core as u8), CoreId(desc.load_core as u8));
    let batch = [
        SimJob::Isolation {
            spec: control_loop(scenario, c1, seed),
            core: c1,
        },
        SimJob::Isolation {
            spec: contender(scenario, LoadLevel::High, c2, seed ^ 0xbeef),
            core: c2,
        },
    ];
    let mut outcomes = engine.run_batch(&batch)?.into_iter();
    Ok(Table6Block {
        scenario,
        core1: next_outcome(&mut outcomes).into_profile(),
        core2: next_outcome(&mut outcomes).into_profile(),
    })
}

/// `run_batch` returns exactly one outcome per submitted job, so a
/// local batch always yields as many outcomes as it listed jobs.
fn next_outcome(outcomes: &mut std::vec::IntoIter<crate::SimOutcome>) -> crate::SimOutcome {
    outcomes
        .next()
        .unwrap_or_else(|| unreachable!("batch yields one outcome per job"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_scenario1_has_paper_shape() {
        let platform = Platform::tc277_reference();
        let panel = figure4_panel(DeploymentScenario::Scenario1, &platform, 42).unwrap();
        assert_eq!(panel.cells.len(), 3);
        // fTC is load-invariant; ILP adapts monotonically.
        let f: Vec<u64> = panel.cells.iter().map(|c| c.ftc.bound_cycles()).collect();
        assert_eq!(f[0], f[1]);
        assert_eq!(f[1], f[2]);
        let i: Vec<u64> = panel.cells.iter().map(|c| c.ilp.bound_cycles()).collect();
        assert!(i[0] < i[1] && i[1] < i[2], "{i:?}");
        // ILP contention roughly below half of fTC contention (Figure 4;
        // the paper's own H-Load numbers give 0.49 vs 0.95, i.e. ~52%).
        for c in &panel.cells {
            assert!(c.ilp.contention_cycles * 20 < c.ftc.contention_cycles * 11);
        }
        // Soundness: every bound covers the observed co-run.
        assert!(panel.all_bounds_sound());
        // Ratios land in the paper's bands (±0.12).
        let h = &panel.cells[2];
        assert!((h.ftc.ratio() - 1.95).abs() < 0.12, "fTC {}", h.ftc.ratio());
        assert!(
            (h.ilp.ratio() - 1.49).abs() < 0.12,
            "ILP-H {}",
            h.ilp.ratio()
        );
        let l = &panel.cells[0];
        assert!(
            (l.ilp.ratio() - 1.24).abs() < 0.12,
            "ILP-L {}",
            l.ilp.ratio()
        );
    }

    #[test]
    fn figure4_scenario2_has_paper_shape() {
        let platform = Platform::tc277_reference();
        let panel = figure4_panel(DeploymentScenario::Scenario2, &platform, 42).unwrap();
        assert!(panel.all_bounds_sound());
        let h = &panel.cells[2];
        let l = &panel.cells[0];
        assert!((h.ftc.ratio() - 2.33).abs() < 0.2, "fTC {}", h.ftc.ratio());
        assert!(
            (h.ilp.ratio() - 1.67).abs() < 0.15,
            "ILP-H {}",
            h.ilp.ratio()
        );
        assert!(
            (l.ilp.ratio() - 1.34).abs() < 0.15,
            "ILP-L {}",
            l.ilp.ratio()
        );
        for c in &panel.cells {
            assert!(c.ilp.contention_cycles * 20 < c.ftc.contention_cycles * 11);
        }
    }

    #[test]
    fn low_traffic_bounds_are_small() {
        let platform = Platform::tc277_reference();
        let panel = figure4_panel(DeploymentScenario::LowTraffic, &platform, 42).unwrap();
        assert!(panel.all_bounds_sound());
        // The paper reports ~10% contention bounds on real use cases.
        let h = &panel.cells[2];
        assert!(
            h.ilp.ratio() < 1.25,
            "low-traffic ILP ratio {} should be small",
            h.ilp.ratio()
        );
    }

    #[test]
    fn table6_shape_matches_paper() {
        let sc1 = table6_block(DeploymentScenario::Scenario1, 42).unwrap();
        let sc2 = table6_block(DeploymentScenario::Scenario2, 42).unwrap();
        // Sc1: no d-cache misses at all; Sc2: clean misses only.
        assert_eq!(sc1.core1.counters().dcache_miss_total(), 0);
        assert!(sc2.core1.counters().dcache_miss_clean > 0);
        assert_eq!(sc2.core1.counters().dcache_miss_dirty, 0);
        // Contender traffic roughly half the app's (Table 6 proportions).
        let r = sc1.core2.counters().pcache_miss as f64 / sc1.core1.counters().pcache_miss as f64;
        assert!((0.3..=1.1).contains(&r), "PM ratio {r:.2}");
    }

    #[test]
    fn panel_is_worker_count_invariant() {
        let platform = Platform::tc277_reference();
        let seq = figure4_panel(DeploymentScenario::Scenario1, &platform, 42).unwrap();
        let engine = ExecEngine::new(4);
        let par =
            figure4_panel_with(&engine, DeploymentScenario::Scenario1, &platform, 42).unwrap();
        assert_eq!(seq.app.counters(), par.app.counters());
        for (a, b) in seq.cells.iter().zip(&par.cells) {
            assert_eq!(a.level, b.level);
            assert_eq!(a.observed_cycles, b.observed_cycles);
            assert_eq!(a.ftc, b.ftc);
            assert_eq!(a.ilp, b.ilp);
            assert_eq!(a.ideal, b.ideal);
        }
        // Re-running the panel on the same engine reuses all four
        // isolation profiles from the memo cache.
        let before = engine.report();
        figure4_panel_with(&engine, DeploymentScenario::Scenario1, &platform, 42).unwrap();
        let after = engine.report();
        assert_eq!(after.cache_hits, before.cache_hits + 4);
        assert_eq!(after.cache_misses, before.cache_misses);
    }

    #[test]
    fn ideal_model_is_tightest() {
        let platform = Platform::tc277_reference();
        let panel = figure4_panel(DeploymentScenario::Scenario1, &platform, 42).unwrap();
        for c in &panel.cells {
            assert!(c.ideal.bound_cycles() <= c.ilp.bound_cycles());
        }
    }
}
