//! `journal-inspect` — lenient record-by-record dump of `mbta::journal`
//! and `mbta::store` files for chaos triage.
//!
//! ```text
//! journal-inspect [--summary] FILE...
//! ```
//!
//! For each file: a one-line verdict (format, line/intact counts,
//! torn-tail position or interior-corruption flag), then — with
//! `--summary` — a counts line (data-record count, CRC-ok ratio in
//! permille, torn-tail byte offset), otherwise one line per record
//! with byte offset, length, CRC status, key and body. Unlike `Journal::resume`/`Store::open` this
//! never modifies the file and never stops at the first problem, so a
//! file the recovery path refuses can still be examined.
//!
//! Exit status: 0 when every file is clean, 1 when any file has a torn
//! tail or interior corruption, 2 on usage or I/O errors.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use mbta::inspect::{inspect_path, render};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: journal-inspect [--summary] FILE...";

fn main() -> ExitCode {
    let mut summary = false;
    let mut files: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--summary" => summary = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => files.push(PathBuf::from(path)),
        }
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut damaged = false;
    for path in &files {
        match inspect_path(path) {
            Ok(report) => {
                print!("{}", render(&report, summary));
                damaged |= report.interior_bad > 0 || report.torn_tail.is_some();
            }
            Err(e) => {
                eprintln!("journal-inspect: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    if damaged {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
