//! A deterministic scoped thread pool for simulation jobs.
//!
//! Workers pull job indices from a shared atomic counter and write each
//! result into the slot matching its job index, so the returned vector
//! is ordered by submission regardless of worker count or scheduling —
//! the property the engine's byte-identical-output guarantee rests on.
//! `std::thread::scope` keeps everything borrow-based: no `'static`
//! bounds, no channels, no external crates.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Runs `f` over every job, on up to `workers` threads, returning the
/// results in job order.
///
/// With `workers <= 1` (or a single job) everything runs inline on the
/// caller's thread — the path the determinism tests compare against.
///
/// # Panics
///
/// A panic inside `f` propagates to the caller once all workers have
/// stopped (standard `thread::scope` behaviour).
pub(crate) fn run_indexed<J, T, F>(jobs: &[J], workers: usize, f: F) -> Vec<T>
where
    J: Sync,
    T: Send,
    F: Fn(usize, &J) -> T + Sync,
{
    let workers = workers.max(1).min(jobs.len().max(1));
    if workers == 1 {
        return jobs.iter().enumerate().map(|(i, j)| f(i, j)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let out = f(i, &jobs[i]);
                // Poison recovery: a poisoned slot still stores the
                // value — overwriting the `Option` cannot tear it.
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
            });
        }
    });
    // `thread::scope` re-raises any worker panic before we get here, so
    // every slot has been claimed and filled exactly once.
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| unreachable!("every job index is claimed exactly once"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..57).collect();
        let expect: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = run_indexed(&jobs, workers, |_, j| j * j);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn index_matches_job() {
        let jobs: Vec<usize> = (0..20).collect();
        let got = run_indexed(&jobs, 4, |i, j| (i, *j));
        for (i, (idx, j)) in got.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*j, i);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let got: Vec<u32> = run_indexed(&[] as &[u32], 4, |_, j| *j);
        assert!(got.is_empty());
    }
}
