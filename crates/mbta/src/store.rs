//! A content-addressed persistent record store — the journal's
//! append/fsync/torn-tail discipline generalized to arbitrary
//! single-line payloads.
//!
//! Where [`crate::journal`] persists *campaign job outcomes* under a
//! fixed grammar, a [`Store`] persists opaque values keyed by a 64-bit
//! FNV fingerprint (the same stable keys produced by [`crate::job_key`]
//! and request fingerprints). The `contention-serve` daemon uses two of
//! these — one for rendered query responses, one for isolation
//! profiles — so a `kill -9` mid-batch restarts into replay and
//! re-serves byte-identical results.
//!
//! # Record format
//!
//! ```text
//! <crc16hex> <body>\n
//! ```
//!
//! with the same FNV-1a line checksum as the journal. Bodies:
//!
//! ```text
//! mbta-store v1 ns=<namespace> cfg=<fp16hex>     header (first line)
//! <key16hex> <sanitized value>                   one record
//! ```
//!
//! The namespace keeps a store from being replayed into a consumer
//! expecting different content (responses vs profiles); the config
//! fingerprint plays the same role as the journal's campaign
//! fingerprint. Values are newline-escaped on write and unescaped on
//! recovery, so any single- or multi-line payload round-trips exactly.
//!
//! # Recovery guarantees
//!
//! Identical to the journal's: a record is durable only once its full
//! line is fsync'd; a torn trailing record is truncated with a report,
//! never silently kept; interior corruption is a hard error. When the
//! same key was appended more than once (a crash between compute and
//! respond can legitimately duplicate work), the **last** intact record
//! wins — appends are the write-ahead order of truth.

use crate::exec::SimOutcome;
use crate::journal::{
    check_frame, crc, frame, parse_record, render_record, sanitize, scan_lines, unsanitize,
    JournalError, JournaledOutcome, RecordSink,
};
use contention::IsolationProfile;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Store format version tag (first-line magic).
const MAGIC: &str = "mbta-store v1";

/// What [`Store::open`] found on disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreRecovery {
    /// Intact records recovered (header excluded, duplicates included).
    pub records: usize,
    /// Distinct keys after last-record-wins dedup.
    pub distinct: usize,
    /// Bytes of a torn trailing record truncated away.
    pub truncated_bytes: u64,
}

/// An append-only, fsync'd, checksummed key → value store.
///
/// Appends are serialised through an internal mutex; one store can be
/// shared by every worker of a server.
pub struct Store {
    sink: Mutex<Box<dyn RecordSink>>,
    path: PathBuf,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store").field("path", &self.path).finish()
    }
}

fn header_body(namespace: &str, config_fp: u64) -> String {
    format!("{MAGIC} ns={namespace} cfg={config_fp:016x}")
}

fn parse_header(body: &str, namespace: &str, config_fp: u64) -> Result<(), JournalError> {
    let rest = body
        .strip_prefix(MAGIC)
        .ok_or_else(|| JournalError::NotAJournal {
            detail: format!("header is `{body}`, expected `{MAGIC} …`"),
        })?;
    let rest = rest.trim();
    let (ns_part, cfg_part) = rest
        .split_once(' ')
        .ok_or_else(|| JournalError::NotAJournal {
            detail: "header carries no cfg fingerprint".into(),
        })?;
    let found_ns = ns_part
        .strip_prefix("ns=")
        .ok_or_else(|| JournalError::NotAJournal {
            detail: "header carries no namespace".into(),
        })?;
    if found_ns != namespace {
        return Err(JournalError::NotAJournal {
            detail: format!("store namespace is `{found_ns}`, expected `{namespace}`"),
        });
    }
    let found = cfg_part
        .strip_prefix("cfg=")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| JournalError::NotAJournal {
            detail: "header carries no cfg fingerprint".into(),
        })?;
    if found != config_fp {
        return Err(JournalError::ConfigMismatch {
            expected: config_fp,
            found,
        });
    }
    Ok(())
}

fn parse_store_record(body: &str, line_no: usize) -> Result<(u64, String), JournalError> {
    let (key_hex, value) = body.split_once(' ').ok_or_else(|| JournalError::Corrupt {
        line: line_no,
        detail: "record has no value field".into(),
    })?;
    let key = u64::from_str_radix(key_hex, 16).map_err(|_| JournalError::Corrupt {
        line: line_no,
        detail: format!("bad record key `{key_hex}`"),
    })?;
    Ok((key, unsanitize(value)))
}

impl Store {
    /// Creates a fresh store at `path` (truncating any existing file),
    /// writes the header and fsyncs it. `namespace` must be a
    /// non-empty, space-free token.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    ///
    /// # Panics
    ///
    /// Panics on a malformed namespace — a caller bug, not an input
    /// condition.
    pub fn create(path: &Path, namespace: &str, config_fp: u64) -> Result<Store, JournalError> {
        assert!(
            !namespace.is_empty() && !namespace.contains(' '),
            "store namespace must be a non-empty, space-free token"
        );
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(frame(&header_body(namespace, config_fp)).as_bytes())?;
        file.sync_data()?;
        Ok(Store {
            sink: Mutex::new(Box::new(file)),
            path: path.to_path_buf(),
        })
    }

    /// Opens a store at `path`, recovering every intact record. A
    /// missing or empty file is created fresh; a torn trailing record
    /// is truncated away (reported, never silent); duplicate keys keep
    /// the last intact record.
    ///
    /// # Errors
    ///
    /// [`JournalError::NotAJournal`] on a bad header or namespace
    /// mismatch, [`JournalError::ConfigMismatch`] on a foreign config
    /// fingerprint, [`JournalError::Corrupt`] on interior corruption,
    /// and I/O errors.
    pub fn open(
        path: &Path,
        namespace: &str,
        config_fp: u64,
    ) -> Result<(Store, BTreeMap<u64, String>, StoreRecovery), JournalError> {
        let mut raw = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        if raw.is_empty() {
            let store = Store::create(path, namespace, config_fp)?;
            return Ok((store, BTreeMap::new(), StoreRecovery::default()));
        }

        let text = String::from_utf8_lossy(&raw);
        let segments = scan_lines(&text);
        let mut entries = BTreeMap::new();
        let mut records = 0usize;
        let mut good_len: u64 = 0;
        let mut truncated = 0u64;
        let mut header_seen = false;

        let last = segments.len().saturating_sub(1);
        for (i, (line, terminated)) in segments.iter().enumerate() {
            let line_no = i + 1;
            let is_last = i == last;
            let parsed = check_frame(line)
                .map_err(|detail| JournalError::Corrupt {
                    line: line_no,
                    detail,
                })
                .and_then(|body| {
                    if line_no == 1 {
                        parse_header(body, namespace, config_fp).map(|()| None)
                    } else {
                        parse_store_record(body, line_no).map(Some)
                    }
                });
            match parsed {
                Ok(entry) if *terminated => {
                    if line_no == 1 {
                        header_seen = true;
                    }
                    good_len += line.len() as u64 + 1;
                    if let Some((key, value)) = entry {
                        records += 1;
                        entries.insert(key, value);
                    }
                }
                // An unterminated line — even one whose checksum
                // happens to hold — is torn under single-write appends.
                Ok(_) => {
                    truncated += line.len() as u64;
                }
                Err(e) if is_last && header_seen => {
                    truncated += line.len() as u64 + u64::from(*terminated);
                    let _ = e;
                }
                Err(_) if is_last && !*terminated && line_no == 1 => {
                    truncated += line.len() as u64;
                }
                Err(e) => return Err(e),
            }
        }

        if !header_seen {
            let store = Store::create(path, namespace, config_fp)?;
            return Ok((
                store,
                BTreeMap::new(),
                StoreRecovery {
                    records: 0,
                    distinct: 0,
                    truncated_bytes: truncated,
                },
            ));
        }

        if truncated > 0 {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(good_len)?;
            f.sync_data()?;
        }

        let file = OpenOptions::new().append(true).open(path)?;
        let report = StoreRecovery {
            records,
            distinct: entries.len(),
            truncated_bytes: truncated,
        };
        Ok((
            Store {
                sink: Mutex::new(Box::new(file)),
                path: path.to_path_buf(),
            },
            entries,
            report,
        ))
    }

    /// Creates a store over an arbitrary [`RecordSink`] — the
    /// fallible-writer seam, mirroring [`crate::Journal::with_sink`].
    ///
    /// # Errors
    ///
    /// Propagates sink write/sync failures from the header append.
    pub fn with_sink(
        label: impl Into<PathBuf>,
        mut sink: Box<dyn RecordSink>,
        namespace: &str,
        config_fp: u64,
    ) -> io::Result<Store> {
        sink.write_record(frame(&header_body(namespace, config_fp)).as_bytes())?;
        sink.sync()?;
        Ok(Store {
            sink: Mutex::new(sink),
            path: label.into(),
        })
    }

    /// Appends one `key → value` record and fsyncs before returning —
    /// the write-ahead guarantee: a value handed out to a consumer is
    /// always re-servable after a crash.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the store stays usable (a later append
    /// may succeed) and the on-disk tail stays recoverable.
    pub fn put(&self, key: u64, value: &str) -> io::Result<()> {
        let line = frame(&format!("{key:016x} {}", sanitize(value)));
        let mut sink = self
            .sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        sink.write_record(line.as_bytes())?;
        sink.sync()
    }

    /// The store's file path (or sink label).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Encodes an isolation profile as a store value, reusing the journal's
/// audited `ok iso …` record grammar (key and attempt 0 included, so
/// the value is self-describing).
pub fn encode_profile(key: u64, profile: &IsolationProfile) -> String {
    render_record(key, 0, &Ok(SimOutcome::Isolation(profile.clone())))
}

/// Decodes a store value written by [`encode_profile`].
///
/// # Errors
///
/// Returns a human-readable description when the value does not parse
/// as an isolation record.
pub fn decode_profile(value: &str) -> Result<(u64, IsolationProfile), String> {
    let entry = parse_record(value, 0).map_err(|e| e.to_string())?;
    match entry.outcome {
        JournaledOutcome::Success(SimOutcome::Isolation(p)) => Ok((entry.key, p)),
        other => Err(format!("not an isolation record: {other:?}")),
    }
}

/// The FNV-1a fingerprint of `parts` joined under `domain` — the store
/// flavour of [`crate::job_key`], for content-addressing values that
/// are not simulation jobs (e.g. serve request fingerprints).
pub fn content_key(domain: &str, parts: &[&str]) -> u64 {
    let mut body = String::from(domain);
    for p in parts {
        body.push('\u{1f}');
        body.push_str(p);
    }
    crc(&body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention::DebugCounters;

    fn tmp(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("mbta_store_{name}_{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn create_put_reopen_roundtrip() {
        let path = tmp("roundtrip");
        let store = Store::create(&path, "responses", 7).unwrap();
        store.put(1, "{\"status\":\"ok\"}").unwrap();
        store.put(2, "line one\nline two\\with backslash").unwrap();
        store.put(1, "{\"status\":\"ok\",\"v\":2}").unwrap();
        drop(store);

        let (_store, entries, report) = Store::open(&path, "responses", 7).unwrap();
        assert_eq!(report.records, 3);
        assert_eq!(report.distinct, 2);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(
            entries[&1], "{\"status\":\"ok\",\"v\":2}",
            "last record wins"
        );
        assert_eq!(entries[&2], "line one\nline two\\with backslash");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let path = tmp("torn");
        let store = Store::create(&path, "responses", 7).unwrap();
        store.put(1, "kept").unwrap();
        store.put(2, "torn away").unwrap();
        drop(store);
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 3]).unwrap();

        let (store, entries, report) = Store::open(&path, "responses", 7).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[&1], "kept");
        assert!(report.truncated_bytes > 0);
        // The store keeps appending cleanly after truncation.
        store.put(3, "after crash").unwrap();
        drop(store);
        let (_s, entries, report) = Store::open(&path, "responses", 7).unwrap();
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[&3], "after crash");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interior_corruption_is_refused() {
        let path = tmp("corrupt");
        let store = Store::create(&path, "responses", 7).unwrap();
        store.put(1, "first").unwrap();
        store.put(2, "second").unwrap();
        drop(store);
        let mut raw = std::fs::read(&path).unwrap();
        // Flip a byte inside the *first* record (line 2 of the file).
        let line2 = raw.iter().position(|&b| b == b'\n').map(|p| p + 1).unwrap();
        raw[line2 + 20] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        match Store::open(&path, "responses", 7) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn namespace_and_config_are_enforced() {
        let path = tmp("ns");
        drop(Store::create(&path, "responses", 7).unwrap());
        assert!(matches!(
            Store::open(&path, "profiles", 7),
            Err(JournalError::NotAJournal { .. })
        ));
        assert!(matches!(
            Store::open(&path, "responses", 8),
            Err(JournalError::ConfigMismatch {
                expected: 8,
                found: 7
            })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_starts_fresh() {
        let path = tmp("fresh");
        let (store, entries, report) = Store::open(&path, "profiles", 1).unwrap();
        assert!(entries.is_empty());
        assert_eq!(report, StoreRecovery::default());
        store.put(9, "value").unwrap();
        drop(store);
        let (_s, entries, _r) = Store::open(&path, "profiles", 1).unwrap();
        assert_eq!(entries[&9], "value");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn profile_encode_decode_roundtrip() {
        let profile = IsolationProfile::new(
            "serve app",
            DebugCounters {
                ccnt: 123_456,
                pmem_stall: 6_000,
                dmem_stall: 30_000,
                pcache_miss: 1_000,
                dcache_miss_clean: 20,
                dcache_miss_dirty: 3,
            },
        );
        let value = encode_profile(42, &profile);
        let (key, decoded) = decode_profile(&value).unwrap();
        assert_eq!(key, 42);
        assert_eq!(decoded, profile);
        assert!(decode_profile("not a record").is_err());
    }

    #[test]
    fn content_key_is_stable_and_separator_safe() {
        let a = content_key("serve/v1", &["bound", "sc1", "high"]);
        let b = content_key("serve/v1", &["bound", "sc1", "high"]);
        assert_eq!(a, b);
        assert_ne!(a, content_key("serve/v1", &["bound", "sc1high", ""]));
        assert_ne!(a, content_key("serve/v2", &["bound", "sc1", "high"]));
    }
}
