//! # `mbta` — measurement-based timing analysis harness
//!
//! The measurement side of the paper's method, run against the
//! [`tc27x_sim`] platform:
//!
//! * [`isolation_profile`] / [`hwm_campaign`] — isolation runs and
//!   high-water-mark envelopes over the DSU debug counters;
//! * [`calibrate`] — the microbenchmark campaign that regenerates
//!   Table 2 (per-target latencies and minimum stall cycles);
//! * [`figure4_panel`] / [`table6_block`] — the §4.2 evaluation
//!   protocol: profile app and contenders in isolation, feed the
//!   models, validate against co-run observations;
//! * [`ExecEngine`] — the parallel experiment engine: batches of
//!   simulation jobs on a deterministic thread pool with memoized
//!   isolation profiles (results are bit-identical for any `--jobs`);
//! * [`report`] — plain-text tables for the experiment binaries;
//! * [`telemetry`] — the deterministic telemetry recorder: per-job
//!   spans, metric registries and the deduplicated warning channel
//!   behind the `--telemetry` sinks.
//!
//! # Examples
//!
//! Reproduce one Figure 4 panel:
//!
//! ```no_run
//! use contention::Platform;
//! use tc27x_sim::DeploymentScenario;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::tc277_reference();
//! let panel = mbta::figure4_panel(DeploymentScenario::Scenario1, &platform, 42)?;
//! for cell in &panel.cells {
//!     println!("{}: fTC {:.2}x, ILP {:.2}x, observed {:.2}x",
//!         cell.level, cell.ftc.ratio(), cell.ilp.ratio(), cell.observed_ratio());
//! }
//! assert!(panel.all_bounds_sound());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

mod calibration;
mod campaign;
mod exec;
mod experiment;
mod faults;
pub mod inspect;
mod journal;
mod pool;
pub mod report;
pub mod retry;
mod runner;
pub mod store;
pub mod telemetry;

pub use calibration::{calibrate, calibrate_with, Calibration};
pub use campaign::{
    CampaignConfig, CampaignManifest, CampaignRunner, CampaignStats, FaultPlan, ManifestEntry,
};
pub use exec::{
    job_key, job_key_on, BatchRunner, EngineReport, ExecEngine, JobError, JobFailure, SimJob,
    SimOutcome,
};
pub use experiment::{
    constraints_for, figure4_panel, figure4_panel_with, table6_block, table6_block_with,
    ExperimentError, Figure4Cell, Figure4Panel, Table6Block,
};
pub use faults::{perturb_profile, to_sim_counters};
pub use journal::{
    Journal, JournalEntry, JournalError, JournaledOutcome, RecordSink, RecoveryReport,
};
pub use retry::{Backoff, FailureClass, RetryPolicy};
pub use runner::{
    hwm_campaign, hwm_campaign_with, isolation_profile, isolation_profile_budgeted,
    isolation_profile_for, observed_corun, observed_corun_budgeted, observed_corun_for,
    to_model_counters, to_model_counts, HwmMeasurement,
};
pub use store::{Store, StoreRecovery};
pub use telemetry::{Format, SinkSpec, Telemetry, Val};
