//! Dependency-free micro-benchmark harness.
//!
//! Replaces criterion for this workspace so the benches build offline
//! with zero external crates. Each benchmark runs a warm-up call, picks
//! an inner iteration count so one sample lasts at least ~2 ms, then
//! takes `sample_size` samples and reports the median (plus min/max)
//! per-call time. `finish()` prints a human table and writes
//! `BENCH_<group>.json` next to the working directory so CI can diff
//! runs.

use std::hint::black_box;
use std::time::Instant;

const TARGET_SAMPLE_NANOS: u128 = 2_000_000; // ~2 ms per sample

/// The shared metadata envelope every `BENCH_*.json` carries, so two
/// result files can be compared knowing they came from the same
/// configuration: a stable fingerprint of the argument vector, the
/// simulator timing kernel, the worker count and the harness version.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetaEnvelope {
    /// FNV-1a fingerprint of the (program-name-stripped) argument
    /// vector, so differently-configured runs never diff clean.
    pub config_fingerprint: u64,
    /// The simulator timing kernel the run used (`tick`, `event`, or a
    /// combination for benches that exercise both).
    pub engine: String,
    /// Worker threads the run was sized to.
    pub jobs: u64,
    /// The harness package version (`CARGO_PKG_VERSION`).
    pub harness_version: String,
}

impl MetaEnvelope {
    /// Builds the envelope from an argument vector (pass `argv[1..]` so
    /// the binary's install path doesn't perturb the fingerprint).
    pub fn new(args: &[String], engine: impl Into<String>, jobs: u64) -> Self {
        // Join on a separator that cannot appear in shell words so
        // ["a b"] and ["a", "b"] fingerprint differently.
        let joined = args.join("\u{1f}");
        MetaEnvelope {
            config_fingerprint: obs::fnv1a(joined.as_bytes()),
            engine: engine.into(),
            jobs,
            harness_version: env!("CARGO_PKG_VERSION").to_string(),
        }
    }

    /// Renders the envelope as a JSON object.
    pub fn to_json(&self) -> String {
        let mut engine = String::new();
        obs::json::escape_into(&self.engine, &mut engine);
        format!(
            "{{\"config_fingerprint\": \"{:016x}\", \"engine\": {engine}, \
             \"jobs\": {}, \"harness_version\": \"{}\"}}",
            self.config_fingerprint, self.jobs, self.harness_version
        )
    }

    /// Splices the envelope into a rendered top-level JSON object (one
    /// that starts with `{\n`), as its first `"meta"` member.
    pub fn wrap(&self, body: &str) -> String {
        match body.strip_prefix("{\n") {
            Some(rest) => format!("{{\n  \"meta\": {},\n{rest}", self.to_json()),
            None => body.to_string(),
        }
    }
}

#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub median_ns: u128,
    pub min_ns: u128,
    pub max_ns: u128,
    pub samples: usize,
    pub iters_per_sample: u64,
    /// Optional throughput denominator (e.g. simulated cycles per call).
    pub elements: Option<u64>,
}

pub struct Harness {
    group: String,
    sample_size: usize,
    elements: Option<u64>,
    envelope: Option<MetaEnvelope>,
    results: Vec<BenchResult>,
    ratios: Vec<(String, f64)>,
}

impl Harness {
    pub fn new(group: &str) -> Self {
        Harness {
            group: group.to_string(),
            sample_size: 10,
            elements: None,
            envelope: None,
            results: Vec::new(),
            ratios: Vec::new(),
        }
    }

    /// Attaches the metadata envelope emitted as the `meta` member of
    /// `BENCH_<group>.json`.
    pub fn set_envelope(&mut self, envelope: MetaEnvelope) -> &mut Self {
        self.envelope = Some(envelope);
        self
    }

    /// Number of timed samples per benchmark (the median is reported).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Attach a throughput denominator to subsequent benchmarks
    /// (reported as elements/sec alongside the time).
    pub fn throughput_elements(&mut self, n: u64) -> &mut Self {
        self.elements = Some(n);
        self
    }

    /// Records a named derived ratio (e.g. a tick-vs-event speedup) to
    /// be emitted as the machine-readable `ratios` member of
    /// `BENCH_<group>.json`, which a perf gate can diff against
    /// committed floors.
    pub fn ratio(&mut self, name: &str, value: f64) -> &mut Self {
        self.ratios.push((name.to_string(), value));
        self
    }

    /// The ratios recorded so far.
    pub fn ratios(&self) -> &[(String, f64)] {
        &self.ratios
    }

    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Warm-up + calibration: how long does one call take?
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_nanos().max(1);
        let iters = (TARGET_SAMPLE_NANOS / once).clamp(1, 100_000) as u64;

        let mut samples: Vec<u128> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() / iters as u128);
        }
        samples.sort_unstable();
        let result = BenchResult {
            name: name.to_string(),
            median_ns: samples[samples.len() / 2],
            min_ns: samples[0],
            max_ns: samples[samples.len() - 1],
            samples: self.sample_size,
            iters_per_sample: iters,
            elements: self.elements,
        };
        let throughput = result
            .elements
            .filter(|_| result.median_ns > 0)
            .map(|e| format!(", {:.2e} elem/s", e as f64 / result.median_ns as f64 * 1e9))
            .unwrap_or_default();
        println!(
            "{}/{:<32} median {:>12} ns  (min {}, max {}, {}x{} iters{})",
            self.group,
            result.name,
            result.median_ns,
            result.min_ns,
            result.max_ns,
            result.samples,
            result.iters_per_sample,
            throughput
        );
        self.results.push(result);
        self
    }

    /// Print the summary and write `BENCH_<group>.json`.
    pub fn finish(&self) {
        let path = format!("BENCH_{}.json", self.group);
        let json = self.to_json();
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
    }

    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"group\": \"{}\",\n", self.group));
        if let Some(envelope) = &self.envelope {
            out.push_str(&format!("  \"meta\": {},\n", envelope.to_json()));
        }
        out.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"samples\": {}, \"iters_per_sample\": {}{}}}{}\n",
                r.name,
                r.median_ns,
                r.min_ns,
                r.max_ns,
                r.samples,
                r.iters_per_sample,
                r.elements
                    .map(|e| format!(", \"elements\": {e}"))
                    .unwrap_or_default(),
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]");
        if !self.ratios.is_empty() {
            out.push_str(",\n  \"ratios\": {");
            for (i, (name, value)) in self.ratios.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{name}\": {value:.4}"));
            }
            out.push('}');
        }
        out.push_str("\n}\n");
        out
    }

    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_reports_every_bench() {
        let mut h = Harness::new("selftest");
        h.sample_size(3);
        h.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..1000 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        h.bench("nop", || 1u64);
        assert_eq!(h.results().len(), 2);
        assert!(h.results().iter().all(|r| r.min_ns <= r.median_ns));
        let json = h.to_json();
        assert!(json.contains("\"group\": \"selftest\""));
        assert!(json.contains("\"name\": \"spin\""));
        assert!(
            !json.contains("\"ratios\""),
            "no ratios member unless ratios were recorded"
        );
    }

    #[test]
    fn ratios_render_as_machine_readable_member() {
        let mut h = Harness::new("ratios");
        h.sample_size(1);
        h.bench("nop", || 0u64);
        h.ratio("corun_hload", 2.25).ratio("code_stream_pf0", 1.125);
        assert_eq!(h.ratios().len(), 2);
        let json = h.to_json();
        let doc = obs::json::parse(&json).unwrap_or_else(|e| panic!("{e}: {json}"));
        let ratios = doc.get("ratios").expect("ratios member");
        assert_eq!(
            ratios.get("corun_hload").and_then(|v| v.as_f64()),
            Some(2.25)
        );
        assert_eq!(
            ratios.get("code_stream_pf0").and_then(|v| v.as_f64()),
            Some(1.125)
        );
    }

    #[test]
    fn envelope_fingerprints_args_and_wraps_reports() {
        let args = |s: &str| -> Vec<String> { s.split_whitespace().map(String::from).collect() };
        let a = MetaEnvelope::new(&args("--jobs 2"), "event", 2);
        let b = MetaEnvelope::new(&args("--jobs 4"), "event", 4);
        assert_ne!(a.config_fingerprint, b.config_fingerprint);
        // ["a b"] and ["a", "b"] must not collide.
        assert_ne!(
            MetaEnvelope::new(&["a b".to_string()], "tick", 1).config_fingerprint,
            MetaEnvelope::new(&args("a b"), "tick", 1).config_fingerprint
        );

        let json = a.to_json();
        assert!(obs::json::parse(&json).is_ok(), "{json}");
        assert!(json.contains("\"engine\": \"event\""));
        assert!(json.contains("\"jobs\": 2"));
        assert!(json.contains(env!("CARGO_PKG_VERSION")));

        let wrapped = a.wrap("{\n  \"x\": 1\n}\n");
        assert!(obs::json::parse(&wrapped).is_ok(), "{wrapped}");
        assert!(wrapped.starts_with("{\n  \"meta\": {"));
        assert!(wrapped.contains("\"x\": 1"));

        let mut h = Harness::new("enveloped");
        h.set_envelope(a);
        h.sample_size(1);
        h.bench("nop", || 0u64);
        let doc = h.to_json();
        assert!(doc.contains("\"meta\": {\"config_fingerprint\""), "{doc}");
        assert!(obs::json::parse(&doc).is_ok());
    }
}
