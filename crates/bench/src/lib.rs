//! # `contention-bench` — the table/figure regeneration harness
//!
//! One binary per evaluation artefact of the paper:
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `table2` | Table 2 — max latency and min stall cycles per SRI target |
//! | `table3` | Table 3 — code/data placement constraints |
//! | `table6` | Table 6 — debug-counter readings, Scenarios 1 & 2 |
//! | `figure4` | Figure 4 — model predictions w.r.t. isolation (pass `--low-traffic` for the §4.2 real-world remark) |
//! | `ablation` | design-choice ablations of the ILP-PTAC model |
//!
//! Micro-benchmarks (`cargo bench`) cover the ILP solver, the
//! simulator, the calibration campaign and model evaluation on a
//! dependency-free [`harness`] (median-of-N over `std::time::Instant`).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod harness;

use contention::{
    ContentionModel, EvalOptions, Evaluator, FsbModel, FtcModel, IdealModel, IlpPtacModel,
    Platform, WcetEstimate,
};
use mbta::{BatchRunner, CampaignConfig, CampaignRunner, ExecEngine, SimJob, Telemetry};
use std::path::PathBuf;
use std::sync::Arc;
use tc27x_sim::{
    CoreId, DataObject, DeploymentScenario, Engine, Pattern, Placement, Program, Region, TaskSpec,
};
use workloads::LoadLevel;

/// Formats paper-vs-measured cells for table output.
pub fn paper_vs(measured: impl std::fmt::Display, paper: impl std::fmt::Display) -> String {
    format!("{measured} (paper: {paper})")
}

/// Formats a WCET estimate as the Figure 4 ratio annotation.
pub fn fig4_cell(e: &WcetEstimate) -> String {
    format!("{:.2}x ({} cyc)", e.ratio(), e.bound_cycles())
}

/// Parses `--jobs N` from a binary's argument vector; defaults to the
/// machine's available parallelism when absent.
///
/// # Errors
///
/// Returns a human-readable message on a missing, non-numeric or zero
/// value.
pub fn jobs_from_args(args: &[String]) -> Result<usize, String> {
    match args.iter().position(|a| a == "--jobs") {
        Some(i) => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--jobs requires a value".to_string())?;
            match v.parse::<usize>() {
                Ok(0) => Err("--jobs must be at least 1".into()),
                Ok(n) => Ok(n),
                Err(_) => Err(format!("invalid --jobs `{v}`")),
            }
        }
        None => Ok(std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)),
    }
}

/// Builds the experiment engine a bench binary should use, honouring
/// `--jobs N`.
///
/// # Errors
///
/// Propagates [`jobs_from_args`] errors.
pub fn engine_from_args(args: &[String]) -> Result<ExecEngine, String> {
    jobs_from_args(args).map(ExecEngine::new)
}

/// Prints the engine's lifetime stats to stderr and writes
/// `BENCH_engine.json` (jobs, wall-clock, runs/sec, cache hit rate,
/// plus the shared [`harness::MetaEnvelope`]) — stderr/file so piped
/// stdout (tables, CSV) stays clean. When the engine carries a
/// telemetry recorder, the report is also folded into it
/// ([`Telemetry::record_engine`]).
pub fn write_engine_report(engine: &ExecEngine, envelope: &harness::MetaEnvelope) {
    let r = engine.report();
    if let Some(t) = engine.telemetry() {
        t.record_engine(&r);
    }
    eprintln!(
        "engine: {} jobs, {} simulations in {:.2}s ({:.1} runs/s), cache hit rate {:.0}%",
        r.jobs,
        r.simulations_run,
        r.wall_seconds,
        r.runs_per_sec(),
        r.hit_rate() * 100.0
    );
    if let Err(e) = std::fs::write("BENCH_engine.json", envelope.wrap(&r.to_json())) {
        eprintln!("warning: could not write BENCH_engine.json: {e}");
    }
}

/// A parameterised contender with traffic scaled by `intensity` per
/// mille of the reference stream (the sweep binary's load generator).
pub fn scaled_contender(core: CoreId, intensity_permille: u32) -> TaskSpec {
    // Reference: 4000 LMU accesses and 2000 flash code lines at 1000‰.
    let accesses = (4_000u64 * intensity_permille as u64 / 1_000) as u32;
    let code_iters = (40u64 * intensity_permille as u64 / 1_000) as u32;
    let mut spec = TaskSpec::empty(format!("sweep-load-{intensity_permille}"));
    if code_iters > 0 {
        let code_prog = Program::build(|b| {
            b.repeat(code_iters, |b| {
                for _ in 0..640 {
                    b.compute(1);
                }
            });
        });
        spec = spec.with_segment(code_prog, Placement::new(Region::Pflash0, true));
    }
    if accesses > 0 {
        let data_prog = Program::build(|b| {
            b.repeat(accesses, |b| {
                b.load("sweep_buf", Pattern::Sequential);
                b.compute(4);
            });
        });
        spec = spec.with_segment(data_prog, Placement::pspr(core));
    } else {
        let idle = Program::build(|b| {
            b.compute(100);
        });
        spec = spec.with_segment(idle, Placement::pspr(core));
    }
    spec.with_object(DataObject::new(
        "sweep_buf",
        4 << 10,
        Placement::new(Region::Lmu, false),
    ))
}

/// The sweep's job list, in the fixed order the CSV assembly consumes:
/// one app isolation, then per intensity a contender isolation and a
/// co-run. Core placement follows the platform description.
fn sweep_batch(
    desc: &::platform::PlatformDesc,
    scenario: DeploymentScenario,
    intensities: &[u32],
) -> Vec<SimJob> {
    let (app_core, load_core) = (CoreId(desc.app_core as u8), CoreId(desc.load_core as u8));
    let app_spec = workloads::control_loop(scenario, app_core, 42);
    let mut batch = vec![SimJob::Isolation {
        spec: app_spec.clone(),
        core: app_core,
    }];
    for &intensity in intensities {
        let load_spec = scaled_contender(load_core, intensity);
        batch.push(SimJob::Isolation {
            spec: load_spec.clone(),
            core: load_core,
        });
        batch.push(SimJob::Corun {
            app: app_spec.clone(),
            app_core,
            load: load_spec,
            load_core,
        });
    }
    batch
}

/// Builds the full sweep CSV (header plus one row per intensity step)
/// on the given runner: all isolation runs and co-runs go out as one
/// batch, and the CSV is assembled from the index-ordered results — so
/// the returned string is byte-identical for any worker count (and for
/// a [`CampaignRunner`] replaying a journal).
///
/// # Errors
///
/// Propagates simulation and model errors; the first failing job aborts
/// the sweep. Use [`sweep_csv_partial`] to degrade gracefully instead.
pub fn sweep_csv<R: BatchRunner + ?Sized>(
    runner: &R,
    scenario: DeploymentScenario,
) -> Result<String, mbta::ExperimentError> {
    let partial = sweep_csv_partial(runner, scenario)?;
    match partial.skipped.first() {
        None => Ok(partial.csv),
        Some(&intensity) => {
            // Reproduce the fail-fast contract: surface the first
            // failed row's job failure.
            let index = 1 + 2 * partial.skipped_indices.first().copied().unwrap_or_default();
            Err(mbta::ExperimentError::Job(mbta::JobError {
                index,
                cause: partial
                    .first_failure
                    .unwrap_or(mbta::JobFailure::Panic(format!(
                        "sweep row for intensity {intensity} failed"
                    ))),
            }))
        }
    }
}

/// A sweep that finished possibly degraded: every computable row is in
/// the CSV, and the rows whose simulations failed are named instead of
/// aborting the whole campaign.
#[derive(Clone, Debug)]
pub struct PartialSweep {
    /// The CSV (header plus every completed row, intensity-ordered).
    pub csv: String,
    /// Intensities (permille) whose row was dropped.
    pub skipped: Vec<u32>,
    /// Positions of the skipped intensities in the sweep order.
    pub skipped_indices: Vec<usize>,
    /// The lowest-indexed job failure among the skipped rows.
    pub first_failure: Option<mbta::JobFailure>,
}

impl PartialSweep {
    /// Whether every row made it into the CSV.
    pub fn is_complete(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// [`sweep_csv`] with graceful degradation: a failed contender
/// isolation or co-run drops only its own row. The app's isolation run
/// must succeed (every column is relative to it). When nothing fails,
/// the CSV is byte-identical to [`sweep_csv`]'s.
///
/// # Errors
///
/// Propagates an app-isolation failure and model errors.
pub fn sweep_csv_partial<R: BatchRunner + ?Sized>(
    runner: &R,
    scenario: DeploymentScenario,
) -> Result<PartialSweep, mbta::ExperimentError> {
    let desc = runner.platform();
    let platform = Platform::from_desc(desc);
    let intensities: Vec<u32> = (0..=1_000).step_by(100).collect();
    let mut results = runner
        .run_batch_detailed(&sweep_batch(desc, scenario, &intensities))
        .into_iter();
    let mut next = move |index: usize| -> Result<mbta::SimOutcome, mbta::JobError> {
        results
            .next()
            .unwrap_or_else(|| unreachable!("batch yields one outcome per job"))
            .map_err(|cause| mbta::JobError { index, cause })
    };

    let app = next(0)?.into_profile();

    let ftc = FtcModel::new(&platform);
    let ilp = IlpPtacModel::new(&platform, mbta::constraints_for(scenario));
    let ideal = IdealModel::new(&platform);
    let fsb = FsbModel::new(&platform);

    let mut csv = String::from(
        "intensity_permille,ftc_ratio,ilp_ratio,ideal_ratio,fsb_ratio,observed_ratio\n",
    );
    let mut skipped = Vec::new();
    let mut skipped_indices = Vec::new();
    let mut first_failure = None;
    let iso = app.counters().ccnt as f64;
    for (pos, intensity) in intensities.into_iter().enumerate() {
        let row = (next(1 + 2 * pos), next(2 + 2 * pos));
        let (load, observed) = match row {
            (Ok(load), Ok(observed)) => (load.into_profile(), observed.into_observed()),
            (load, observed) => {
                if first_failure.is_none() {
                    first_failure = [load.err(), observed.err()]
                        .into_iter()
                        .flatten()
                        .next()
                        .map(|e| e.cause);
                }
                skipped.push(intensity);
                skipped_indices.push(pos);
                continue;
            }
        };
        csv.push_str(&format!(
            "{intensity},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            ftc.wcet_estimate(&app, &[&load])?.ratio(),
            ilp.wcet_estimate(&app, &[&load])?.ratio(),
            ideal.wcet_estimate(&app, &[&load])?.ratio(),
            fsb.wcet_estimate(&app, &[&load])?.ratio(),
            observed as f64 / iso,
        ));
    }
    Ok(PartialSweep {
        csv,
        skipped,
        skipped_indices,
        first_failure,
    })
}

/// How often the fault-tolerant evaluator degraded to the fTC bound
/// over a set of (app, contender) pairs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FallbackReport {
    /// Pairs bounded by the exact ILP-PTAC solve.
    pub ilp: usize,
    /// Pairs that fell back to the contender-independent fTC bound.
    pub ftc: usize,
}

impl FallbackReport {
    /// Fraction of pairs that fell back, in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        let total = self.ilp + self.ftc;
        if total == 0 {
            0.0
        } else {
            self.ftc as f64 / total as f64
        }
    }
}

impl std::fmt::Display for FallbackReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fallback rate: {}/{} pairs degraded to fTC ({:.0}%)",
            self.ftc,
            self.ilp + self.ftc,
            self.rate() * 100.0
        )
    }
}

/// Runs the fault-tolerant [`Evaluator`] over every (app, contender)
/// pair of the intensity sweep and counts which model produced each
/// bound. Isolation profiles come from the engine's memo cache, so
/// calling this after [`sweep_csv`] re-runs no simulations.
///
/// With a `telemetry` recorder, every solve lands as a span plus node
/// counters ([`Telemetry::record_solve`]); a non-zero fallback rate is
/// additionally recorded on the `ilp.fallback` warning channel (quiet —
/// the caller owns the stderr rendering of the report).
///
/// # Errors
///
/// Propagates engine and model errors.
pub fn sweep_fallback_report<R: BatchRunner + ?Sized>(
    engine: &R,
    scenario: DeploymentScenario,
    node_budget: Option<u64>,
    telemetry: Option<&Telemetry>,
) -> Result<FallbackReport, mbta::ExperimentError> {
    let desc = engine.platform();
    let platform = Platform::from_desc(desc);
    let (app_core, load_core) = (CoreId(desc.app_core as u8), CoreId(desc.load_core as u8));
    let app = engine.isolation(&workloads::control_loop(scenario, app_core, 42), app_core)?;

    let mut options = EvalOptions::for_scenario(mbta::constraints_for(scenario));
    if let Some(budget) = node_budget {
        options.ilp.node_budget = budget;
    }
    let evaluator = Evaluator::new(&platform, options);

    let mut report = FallbackReport::default();
    for intensity in (0..=1_000).step_by(100) {
        let spec = scaled_contender(load_core, intensity);
        let label = format!("solve:{}", spec.name);
        let load = engine.isolation(&spec, load_core)?;
        let evaluated = evaluator.bound(&app, &load)?;
        if let Some(t) = telemetry {
            t.record_solve(
                label,
                evaluated.nodes_explored,
                evaluated.source.is_fallback(),
            );
        }
        if evaluated.source.is_fallback() {
            report.ftc += 1;
        } else {
            report.ilp += 1;
        }
    }
    if let Some(t) = telemetry {
        if report.ftc > 0 {
            t.warn_quiet("ilp.fallback", report.to_string());
        }
    }
    Ok(report)
}

/// [`sweep_fallback_report`] for one Figure 4 panel: the three
/// contender levels of `scenario` against the control-loop app, using
/// the same specs (and thus the same memoized profiles) as
/// [`mbta::figure4_panel_with`].
///
/// # Errors
///
/// Propagates engine and model errors.
pub fn panel_fallback_report<R: BatchRunner + ?Sized>(
    engine: &R,
    scenario: DeploymentScenario,
    seed: u64,
    node_budget: Option<u64>,
    telemetry: Option<&Telemetry>,
) -> Result<FallbackReport, mbta::ExperimentError> {
    let desc = engine.platform();
    let platform = Platform::from_desc(desc);
    let (app_core, load_core) = (CoreId(desc.app_core as u8), CoreId(desc.load_core as u8));
    let app = engine.isolation(&workloads::control_loop(scenario, app_core, seed), app_core)?;

    let mut options = EvalOptions::for_scenario(mbta::constraints_for(scenario));
    if let Some(budget) = node_budget {
        options.ilp.node_budget = budget;
    }
    let evaluator = Evaluator::new(&platform, options);

    let mut report = FallbackReport::default();
    for level in LoadLevel::all() {
        let spec =
            workloads::contender(scenario, level, load_core, seed.wrapping_add(level as u64));
        let label = format!("solve:{}", spec.name);
        let load = engine.isolation(&spec, load_core)?;
        let evaluated = evaluator.bound(&app, &load)?;
        if let Some(t) = telemetry {
            t.record_solve(
                label,
                evaluated.nodes_explored,
                evaluated.source.is_fallback(),
            );
        }
        if evaluated.source.is_fallback() {
            report.ftc += 1;
        } else {
            report.ilp += 1;
        }
    }
    if let Some(t) = telemetry {
        if report.ftc > 0 {
            t.warn_quiet("ilp.fallback", report.to_string());
        }
    }
    Ok(report)
}

/// Parses an optional `--ilp-budget N` from a binary's argument vector.
///
/// # Errors
///
/// Returns a human-readable message on a missing, non-numeric or zero
/// value.
pub fn ilp_budget_from_args(args: &[String]) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == "--ilp-budget") {
        Some(i) => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--ilp-budget requires a value".to_string())?;
            match v.parse::<u64>() {
                Ok(0) => Err("--ilp-budget must be at least 1".into()),
                Ok(n) => Ok(Some(n)),
                Err(_) => Err(format!("invalid --ilp-budget `{v}`")),
            }
        }
        None => Ok(None),
    }
}

/// Parses an optional `--platform NAME` from a binary's argument
/// vector; defaults to the built-in TC27x description. Unknown names
/// error with the list of known profiles.
///
/// # Errors
///
/// Returns a human-readable message on a missing or unknown name.
pub fn platform_from_args(args: &[String]) -> Result<::platform::PlatformDesc, String> {
    match args.iter().position(|a| a == "--platform") {
        Some(i) => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--platform requires a name".to_string())?;
            ::platform::PlatformDesc::builtin(v).ok_or_else(|| {
                format!(
                    "unknown platform `{v}` (known platforms: {})",
                    ::platform::PlatformDesc::names().join(", ")
                )
            })
        }
        None => Ok(::platform::default_platform().clone()),
    }
}

/// Parses an optional `--<flag> <path>` from an argument vector.
fn path_from_args(args: &[String], flag: &str) -> Result<Option<PathBuf>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => args
            .get(i + 1)
            .map(|v| Some(PathBuf::from(v)))
            .ok_or_else(|| format!("{flag} requires a path")),
        None => Ok(None),
    }
}

/// The flags shared by every bench binary, parsed once: engine sizing
/// (`--jobs N`), simulator kernel (`--engine tick|event`), solver
/// budget (`--ilp-budget N`), the crash-safe campaign options
/// (`--journal <file>`, `--resume <file>`, `--watchdog-ms N`), and the
/// telemetry sink (`--telemetry <path>[:jsonl|chrome|summary]`).
#[derive(Clone, Debug)]
pub struct CommonArgs {
    /// Worker threads (`--jobs N`, default: available parallelism).
    pub jobs: usize,
    /// Simulator timing kernel (`--engine tick|event`, default event).
    /// The kernels are bit-identical, so every table/figure is
    /// unaffected — the flag only trades wall-clock speed.
    pub sim_engine: Engine,
    /// Basic-block memoization in the event kernel
    /// (`--no-block-memo` disables it, default on). Memoized and
    /// unmemoized runs are bit-identical; the switch exists for
    /// debugging and for CI's equivalence legs.
    pub block_memo: bool,
    /// ILP node budget for the fault-tolerant evaluator
    /// (`--ilp-budget N`).
    pub ilp_budget: Option<u64>,
    /// Write a fresh campaign journal to this path (`--journal <file>`).
    pub journal: Option<PathBuf>,
    /// Resume a campaign from this journal (`--resume <file>`).
    pub resume: Option<PathBuf>,
    /// Per-job wall-clock watchdog (`--watchdog-ms N`).
    pub watchdog_millis: Option<u64>,
    /// Telemetry sink (`--telemetry <path>[:format]`; `-` is stderr).
    pub telemetry: Option<mbta::SinkSpec>,
    /// Attribution sink (`--attribution <path>`): record per-grant
    /// contention attribution on every simulation and flush the folded
    /// matrices as JSONL on exit. Observation-only — no table or figure
    /// changes.
    pub attribution: Option<PathBuf>,
    /// Platform description jobs run on (`--platform NAME`, default
    /// `tc27x`). Unlike the kernel/memo knobs this *changes results*:
    /// it selects the simulated machine, and every journal key and memo
    /// fingerprint binds it.
    pub platform: ::platform::PlatformDesc,
}

impl CommonArgs {
    /// Parses the shared flags from a binary's argument vector.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed values, or when
    /// `--journal` and `--resume` are combined (resume already appends
    /// to the journal it reads).
    pub fn parse(args: &[String]) -> Result<CommonArgs, String> {
        let journal = path_from_args(args, "--journal")?;
        let resume = path_from_args(args, "--resume")?;
        if journal.is_some() && resume.is_some() {
            return Err(
                "--journal and --resume are mutually exclusive (resume appends in place)".into(),
            );
        }
        let watchdog_millis = match args.iter().position(|a| a == "--watchdog-ms") {
            Some(i) => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| "--watchdog-ms requires a value".to_string())?;
                match v.parse::<u64>() {
                    Ok(n) => Some(n),
                    Err(_) => return Err(format!("invalid --watchdog-ms `{v}`")),
                }
            }
            None => None,
        };
        let sim_engine = match args.iter().position(|a| a == "--engine") {
            Some(i) => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| "--engine requires a value".to_string())?;
                v.parse::<Engine>().map_err(|e| e.to_string())?
            }
            None => Engine::default(),
        };
        let telemetry = match args.iter().position(|a| a == "--telemetry") {
            Some(i) => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| "--telemetry requires a path[:format]".to_string())?;
                Some(v.parse::<mbta::SinkSpec>().map_err(|e| e.to_string())?)
            }
            None => None,
        };
        Ok(CommonArgs {
            jobs: jobs_from_args(args)?,
            sim_engine,
            block_memo: !args.iter().any(|a| a == "--no-block-memo"),
            ilp_budget: ilp_budget_from_args(args)?,
            journal,
            resume,
            watchdog_millis,
            telemetry,
            attribution: path_from_args(args, "--attribution")?,
            platform: platform_from_args(args)?,
        })
    }

    /// Creates the telemetry recorder for the named command when
    /// `--telemetry` was given, `None` otherwise. The recorder is an
    /// `Arc` because the engine shares it with the binary's own
    /// recording calls.
    pub fn recorder(&self, command: &str) -> Option<Arc<Telemetry>> {
        self.telemetry
            .as_ref()
            .map(|_| Arc::new(Telemetry::new(command)))
    }

    /// Builds the experiment engine these flags describe.
    pub fn engine(&self) -> ExecEngine {
        self.engine_with(None)
    }

    /// [`engine`](Self::engine) with an attached telemetry recorder
    /// (pass the value [`recorder`](Self::recorder) returned).
    pub fn engine_with(&self, telemetry: Option<&Arc<Telemetry>>) -> ExecEngine {
        let engine = ExecEngine::new(self.jobs)
            .with_sim_engine(self.sim_engine)
            .with_block_memo(self.block_memo)
            .with_attribution(self.attribution.is_some())
            .with_platform(self.platform.clone());
        match telemetry {
            Some(t) => engine.with_telemetry(Arc::clone(t)),
            None => engine,
        }
    }

    /// The [`harness::MetaEnvelope`] describing this run: fingerprint
    /// of `args` (pass `argv[1..]`), timing kernel and worker count.
    pub fn envelope(&self, args: &[String]) -> harness::MetaEnvelope {
        harness::MetaEnvelope::new(args, self.sim_engine.to_string(), self.jobs as u64)
    }

    /// Renders the recorder to the `--telemetry` sink. A no-op when the
    /// flag (and thus the recorder) is absent.
    ///
    /// # Errors
    ///
    /// Returns a readable message when writing the sink fails.
    pub fn flush_telemetry(&self, telemetry: Option<&Arc<Telemetry>>) -> Result<(), String> {
        if let (Some(spec), Some(t)) = (&self.telemetry, telemetry) {
            t.flush(spec)
                .map_err(|e| format!("cannot write telemetry to {}: {e}", spec.path))?;
        }
        Ok(())
    }

    /// Writes the engine's folded attribution matrices to the
    /// `--attribution` sink. A no-op when the flag is absent; requires
    /// the engine to carry a telemetry recorder (the matrices ride on
    /// recorded job statistics), so attach one via
    /// [`engine_with`](Self::engine_with) — or pass the recorder the
    /// engine already holds.
    ///
    /// # Errors
    ///
    /// Returns a readable message when writing the sink fails.
    pub fn flush_attribution(&self, telemetry: Option<&Arc<Telemetry>>) -> Result<(), String> {
        if let (Some(path), Some(t)) = (&self.attribution, telemetry) {
            let rendered = mbta::telemetry::render_attribution_jsonl(&t.attribution());
            std::fs::write(path, rendered)
                .map_err(|e| format!("cannot write attribution to {}: {e}", path.display()))?;
        }
        Ok(())
    }

    /// The campaign configuration these flags describe (default retry
    /// policy, no fault injection, optional watchdog).
    pub fn campaign_config(&self) -> CampaignConfig {
        CampaignConfig {
            watchdog_millis: self.watchdog_millis,
            ..CampaignConfig::default()
        }
    }
}

/// Builds the crash-safe campaign runner the flags ask for: `Some` when
/// `--journal` (fresh) or `--resume` (recover + replay) was given,
/// `None` for a plain in-memory run. Resume recovery is narrated on
/// stderr — including a torn-trailing-record truncation, which is
/// warned about, never silent.
///
/// # Errors
///
/// Propagates journal creation/recovery errors as readable messages.
pub fn campaign_from_args<'e>(
    engine: &'e ExecEngine,
    common: &CommonArgs,
    telemetry: Option<&Telemetry>,
) -> Result<Option<CampaignRunner<'e>>, String> {
    let config = common.campaign_config();
    if let Some(path) = &common.journal {
        let runner = CampaignRunner::journaled(engine, config, path)
            .map_err(|e| format!("cannot create journal {}: {e}", path.display()))?;
        eprintln!("journal: recording to {}", path.display());
        return Ok(Some(runner));
    }
    if let Some(path) = &common.resume {
        let (runner, report) = CampaignRunner::resumed(engine, config, path)
            .map_err(|e| format!("cannot resume from {}: {e}", path.display()))?;
        match telemetry {
            // With a recorder, the torn-record truncation goes through
            // the deduplicated warning channel (which prints the same
            // `warning:` line to stderr and keeps a `warn` record).
            Some(t) if report.truncated_bytes > 0 => {
                eprintln!(
                    "resume: {} record(s) recovered from {}",
                    report.records,
                    path.display()
                );
                t.warn(
                    "journal.torn",
                    format!(
                        "{} byte(s) of a torn trailing record truncated from {}",
                        report.truncated_bytes,
                        path.display()
                    ),
                );
            }
            _ => {
                eprint!(
                    "resume: {} record(s) recovered from {}",
                    report.records,
                    path.display()
                );
                if report.truncated_bytes > 0 {
                    eprint!(
                        " (warning: {} byte(s) of a torn trailing record truncated)",
                        report.truncated_bytes
                    );
                }
                eprintln!();
            }
        }
        return Ok(Some(runner));
    }
    Ok(None)
}

/// Prints the campaign's partial-result manifest and stats to stderr,
/// and folds the stats into the telemetry recorder when one is given
/// ([`Telemetry::record_campaign`]). Returns `false` when jobs stayed
/// unrecovered — the campaign finished degraded, and the binary should
/// exit non-zero without discarding the completed results.
pub fn report_campaign(
    campaign: Option<&CampaignRunner<'_>>,
    telemetry: Option<&Telemetry>,
) -> bool {
    let Some(campaign) = campaign else {
        return true;
    };
    let stats = campaign.stats();
    if let Some(t) = telemetry {
        t.record_campaign(&stats);
    }
    eprintln!(
        "campaign: {} replayed, {} executed, {} retried, {} fault(s) injected, {} timeout(s)",
        stats.replayed, stats.executed, stats.retried, stats.injected_faults, stats.timed_out
    );
    let manifest = campaign.manifest();
    if !manifest.is_complete() {
        eprint!("{}", manifest.render());
    }
    manifest.is_complete()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_format() {
        assert_eq!(super::paper_vs(16, 16), "16 (paper: 16)");
        let e = contention::WcetEstimate {
            isolation_cycles: 100,
            contention_cycles: 50,
        };
        assert_eq!(super::fig4_cell(&e), "1.50x (150 cyc)");
    }

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn jobs_flag_parses() {
        assert_eq!(jobs_from_args(&argv("--jobs 4")).unwrap(), 4);
        assert_eq!(jobs_from_args(&argv("--scenario sc2 --jobs 2")).unwrap(), 2);
        assert!(jobs_from_args(&argv("")).unwrap() >= 1);
        assert!(jobs_from_args(&argv("--jobs")).is_err());
        assert!(jobs_from_args(&argv("--jobs zero")).is_err());
        assert!(jobs_from_args(&argv("--jobs 0")).is_err());
    }

    #[test]
    fn ilp_budget_flag_parses() {
        assert_eq!(ilp_budget_from_args(&argv("")).unwrap(), None);
        assert_eq!(
            ilp_budget_from_args(&argv("--ilp-budget 7")).unwrap(),
            Some(7)
        );
        assert!(ilp_budget_from_args(&argv("--ilp-budget")).is_err());
        assert!(ilp_budget_from_args(&argv("--ilp-budget 0")).is_err());
        assert!(ilp_budget_from_args(&argv("--ilp-budget x")).is_err());
    }

    #[test]
    fn platform_flag_parses_and_rejects() {
        let d = CommonArgs::parse(&argv("--jobs 1")).unwrap();
        assert_eq!(d.platform.name, "tc27x");
        assert!(d.platform.is_default());
        let t = CommonArgs::parse(&argv("--jobs 1 --platform tc27x-tdma")).unwrap();
        assert_eq!(t.platform.name, "tc27x-tdma");
        assert!(!t.platform.is_default());
        assert_eq!(t.engine().platform().name, "tc27x-tdma");
        let err = CommonArgs::parse(&argv("--platform hal9000")).unwrap_err();
        assert!(err.contains("unknown platform `hal9000`"), "{err}");
        assert!(
            err.contains("tc27x") && err.contains("tc27x-tdma") && err.contains("ahb2"),
            "the error must list every known profile: {err}"
        );
        assert!(CommonArgs::parse(&argv("--platform")).is_err());
    }

    #[test]
    fn fallback_report_formats() {
        let r = FallbackReport { ilp: 9, ftc: 3 };
        assert!((r.rate() - 0.25).abs() < 1e-12);
        assert_eq!(
            r.to_string(),
            "fallback rate: 3/12 pairs degraded to fTC (25%)"
        );
        assert_eq!(FallbackReport::default().rate(), 0.0);
    }

    #[test]
    fn scaled_contender_scales_to_nothing() {
        let idle = scaled_contender(CoreId(2), 0);
        let full = scaled_contender(CoreId(2), 1_000);
        assert_eq!(idle.segments.len(), 1);
        assert_eq!(full.segments.len(), 2);
    }

    #[test]
    fn common_args_parse_and_reject() {
        let c = CommonArgs::parse(&argv(
            "--jobs 3 --ilp-budget 9 --journal j.log --watchdog-ms 250",
        ))
        .unwrap();
        assert_eq!(c.jobs, 3);
        assert_eq!(c.sim_engine, Engine::Event, "event is the default");
        assert_eq!(c.ilp_budget, Some(9));
        assert_eq!(c.journal, Some(PathBuf::from("j.log")));
        assert_eq!(c.resume, None);
        assert_eq!(c.watchdog_millis, Some(250));
        assert_eq!(c.campaign_config().watchdog_millis, Some(250));

        let r = CommonArgs::parse(&argv("--resume j.log")).unwrap();
        assert_eq!(r.resume, Some(PathBuf::from("j.log")));

        let t = CommonArgs::parse(&argv("--jobs 1 --engine tick")).unwrap();
        assert_eq!(t.sim_engine, Engine::Tick);
        assert_eq!(t.engine().sim_engine(), Engine::Tick);
        assert!(t.block_memo, "memo defaults on");
        assert!(t.engine().block_memo());
        let nm = CommonArgs::parse(&argv("--jobs 1 --no-block-memo")).unwrap();
        assert!(!nm.block_memo);
        assert!(!nm.engine().block_memo());
        assert_eq!(t.telemetry, None);
        assert!(t.recorder("x").is_none());
        assert!(t.flush_telemetry(None).is_ok(), "no sink is a no-op");

        let tel = CommonArgs::parse(&argv("--jobs 1 --telemetry out.json:chrome")).unwrap();
        let spec = tel.telemetry.clone().unwrap();
        assert_eq!(spec.path, "out.json");
        assert_eq!(spec.format, mbta::Format::Chrome);
        let recorder = tel.recorder("test-run").unwrap();
        let engine = tel.engine_with(Some(&recorder));
        assert!(engine.telemetry().is_some(), "recorder attached");
        let envelope = tel.envelope(&argv("--jobs 1"));
        assert_eq!(envelope.jobs, 1);
        assert_eq!(envelope.engine, "event");

        let attr = CommonArgs::parse(&argv("--jobs 1 --attribution attr.jsonl")).unwrap();
        assert_eq!(attr.attribution, Some(PathBuf::from("attr.jsonl")));
        assert!(attr.engine().attribution(), "flag switches the recorder on");
        assert!(!t.engine().attribution(), "off by default");
        assert!(CommonArgs::parse(&argv("--attribution")).is_err());

        assert!(CommonArgs::parse(&argv("--telemetry")).is_err());
        assert!(CommonArgs::parse(&argv("--telemetry :chrome")).is_err());
        assert!(CommonArgs::parse(&argv("--journal a --resume b")).is_err());
        assert!(CommonArgs::parse(&argv("--journal")).is_err());
        assert!(CommonArgs::parse(&argv("--resume")).is_err());
        assert!(CommonArgs::parse(&argv("--watchdog-ms soon")).is_err());
        assert!(CommonArgs::parse(&argv("--engine")).is_err());
        assert!(CommonArgs::parse(&argv("--engine warp")).is_err());
    }

    #[test]
    fn campaign_from_args_roundtrip() {
        let mut path = std::env::temp_dir();
        path.push(format!("bench-campaign-args-{}", std::process::id()));
        let arg_strings = argv(&format!("--jobs 1 --journal {}", path.display()));
        let common = CommonArgs::parse(&arg_strings).unwrap();
        let engine = common.engine();
        let campaign = campaign_from_args(&engine, &common, None).unwrap().unwrap();
        assert!(
            report_campaign(Some(&campaign), None),
            "empty campaign complete"
        );
        drop(campaign);

        let resume_args = argv(&format!("--jobs 1 --resume {}", path.display()));
        let common = CommonArgs::parse(&resume_args).unwrap();
        let engine = common.engine();
        let telemetry = Telemetry::new("roundtrip");
        let campaign = campaign_from_args(&engine, &common, Some(&telemetry)).unwrap();
        assert!(campaign.is_some());
        assert!(
            report_campaign(campaign.as_ref(), Some(&telemetry)),
            "resumed empty campaign complete"
        );
        assert_eq!(telemetry.det_counter("campaign.executed"), 0);

        let plain = CommonArgs::parse(&argv("--jobs 1")).unwrap();
        assert!(campaign_from_args(&engine, &plain, None).unwrap().is_none());
        assert!(report_campaign(None, None));
        std::fs::remove_file(&path).ok();
    }

    /// The graceful-degradation path must not change a healthy sweep:
    /// `sweep_csv_partial` with nothing failing is byte-identical to
    /// `sweep_csv`, on the plain engine and under a campaign.
    #[test]
    fn partial_sweep_matches_sweep_when_nothing_fails() {
        let engine = ExecEngine::new(2);
        let full = sweep_csv(&engine, DeploymentScenario::Scenario1).unwrap();
        let partial = sweep_csv_partial(&engine, DeploymentScenario::Scenario1).unwrap();
        assert!(partial.is_complete());
        assert_eq!(partial.csv, full);

        let campaign = CampaignRunner::new(&engine, CampaignConfig::default());
        let campaigned = sweep_csv_partial(&campaign, DeploymentScenario::Scenario1).unwrap();
        assert!(campaigned.is_complete());
        assert_eq!(campaigned.csv, full);
    }

    /// Under an always-faulting campaign with retries exhausted, the
    /// partial sweep keeps the header, names every skipped intensity,
    /// and the strict `sweep_csv` surfaces the underlying job failure.
    #[test]
    fn partial_sweep_degrades_and_strict_sweep_fails() {
        use mbta::{FaultPlan, RetryPolicy};
        let engine = ExecEngine::new(2);
        let config = CampaignConfig {
            retry: RetryPolicy { max_attempts: 1 },
            fault: Some(FaultPlan {
                rate_permille: 1_000,
                seed: 3,
            }),
            watchdog_millis: None,
            journal_strict: false,
            timeout_fault: None,
        };
        let campaign = CampaignRunner::new(&engine, config);
        // The app isolation itself fails → the whole sweep is an error.
        assert!(sweep_csv_partial(&campaign, DeploymentScenario::Scenario1).is_err());
        assert!(sweep_csv(&campaign, DeploymentScenario::Scenario1).is_err());
    }

    /// When only row jobs stay unrecovered (the app's isolation
    /// survives), the partial sweep keeps every healthy row, names the
    /// skipped intensities, and the strict `sweep_csv` still errors.
    #[test]
    fn partial_sweep_skips_only_failed_rows() {
        use mbta::{FaultPlan, RetryPolicy};
        // The fault plan is a pure function of (seed, job key, attempt),
        // so this scan is deterministic: find a plan that spares the app
        // but permanently kills at least one row job.
        for seed in 0..64 {
            let engine = ExecEngine::new(2);
            let config = CampaignConfig {
                retry: RetryPolicy { max_attempts: 1 },
                fault: Some(FaultPlan {
                    rate_permille: 300,
                    seed,
                }),
                watchdog_millis: None,
                journal_strict: false,
                timeout_fault: None,
            };
            let campaign = CampaignRunner::new(&engine, config);
            let Ok(partial) = sweep_csv_partial(&campaign, DeploymentScenario::Scenario1) else {
                continue;
            };
            if partial.is_complete() {
                continue;
            }
            let rows = partial.csv.lines().count() - 1;
            assert!(partial.csv.starts_with("intensity_permille,"));
            assert_eq!(rows + partial.skipped.len(), 11, "seed {seed}");
            assert_eq!(partial.skipped.len(), partial.skipped_indices.len());
            assert!(partial.first_failure.is_some(), "seed {seed}");
            // The fail-fast variant surfaces the same campaign state as
            // an error instead of a degraded CSV.
            assert!(sweep_csv(&campaign, DeploymentScenario::Scenario1).is_err());
            return;
        }
        panic!("no fault seed in 0..64 produced a row-wise degradation");
    }
}
