//! # `contention-bench` — the table/figure regeneration harness
//!
//! One binary per evaluation artefact of the paper:
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `table2` | Table 2 — max latency and min stall cycles per SRI target |
//! | `table3` | Table 3 — code/data placement constraints |
//! | `table6` | Table 6 — debug-counter readings, Scenarios 1 & 2 |
//! | `figure4` | Figure 4 — model predictions w.r.t. isolation (pass `--low-traffic` for the §4.2 real-world remark) |
//! | `ablation` | design-choice ablations of the ILP-PTAC model |
//!
//! Micro-benchmarks (`cargo bench`) cover the ILP solver, the
//! simulator, the calibration campaign and model evaluation on a
//! dependency-free [`harness`] (median-of-N over `std::time::Instant`).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod harness;

use contention::{
    ContentionModel, EvalOptions, Evaluator, FsbModel, FtcModel, IdealModel, IlpPtacModel,
    Platform, WcetEstimate,
};
use mbta::{ExecEngine, SimJob};
use tc27x_sim::{
    CoreId, DataObject, DeploymentScenario, Pattern, Placement, Program, Region, TaskSpec,
};
use workloads::LoadLevel;

/// Formats paper-vs-measured cells for table output.
pub fn paper_vs(measured: impl std::fmt::Display, paper: impl std::fmt::Display) -> String {
    format!("{measured} (paper: {paper})")
}

/// Formats a WCET estimate as the Figure 4 ratio annotation.
pub fn fig4_cell(e: &WcetEstimate) -> String {
    format!("{:.2}x ({} cyc)", e.ratio(), e.bound_cycles())
}

/// Parses `--jobs N` from a binary's argument vector; defaults to the
/// machine's available parallelism when absent.
///
/// # Errors
///
/// Returns a human-readable message on a missing, non-numeric or zero
/// value.
pub fn jobs_from_args(args: &[String]) -> Result<usize, String> {
    match args.iter().position(|a| a == "--jobs") {
        Some(i) => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--jobs requires a value".to_string())?;
            match v.parse::<usize>() {
                Ok(0) => Err("--jobs must be at least 1".into()),
                Ok(n) => Ok(n),
                Err(_) => Err(format!("invalid --jobs `{v}`")),
            }
        }
        None => Ok(std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)),
    }
}

/// Builds the experiment engine a bench binary should use, honouring
/// `--jobs N`.
///
/// # Errors
///
/// Propagates [`jobs_from_args`] errors.
pub fn engine_from_args(args: &[String]) -> Result<ExecEngine, String> {
    jobs_from_args(args).map(ExecEngine::new)
}

/// Prints the engine's lifetime stats to stderr and writes
/// `BENCH_engine.json` (jobs, wall-clock, runs/sec, cache hit rate) —
/// stderr/file so piped stdout (tables, CSV) stays clean.
pub fn write_engine_report(engine: &ExecEngine) {
    let r = engine.report();
    eprintln!(
        "engine: {} jobs, {} simulations in {:.2}s ({:.1} runs/s), cache hit rate {:.0}%",
        r.jobs,
        r.simulations_run,
        r.wall_seconds,
        r.runs_per_sec(),
        r.hit_rate() * 100.0
    );
    if let Err(e) = r.write("BENCH_engine.json") {
        eprintln!("warning: could not write BENCH_engine.json: {e}");
    }
}

/// A parameterised contender with traffic scaled by `intensity` per
/// mille of the reference stream (the sweep binary's load generator).
pub fn scaled_contender(core: CoreId, intensity_permille: u32) -> TaskSpec {
    // Reference: 4000 LMU accesses and 2000 flash code lines at 1000‰.
    let accesses = (4_000u64 * intensity_permille as u64 / 1_000) as u32;
    let code_iters = (40u64 * intensity_permille as u64 / 1_000) as u32;
    let mut spec = TaskSpec::empty(format!("sweep-load-{intensity_permille}"));
    if code_iters > 0 {
        let code_prog = Program::build(|b| {
            b.repeat(code_iters, |b| {
                for _ in 0..640 {
                    b.compute(1);
                }
            });
        });
        spec = spec.with_segment(code_prog, Placement::new(Region::Pflash0, true));
    }
    if accesses > 0 {
        let data_prog = Program::build(|b| {
            b.repeat(accesses, |b| {
                b.load("sweep_buf", Pattern::Sequential);
                b.compute(4);
            });
        });
        spec = spec.with_segment(data_prog, Placement::pspr(core));
    } else {
        let idle = Program::build(|b| {
            b.compute(100);
        });
        spec = spec.with_segment(idle, Placement::pspr(core));
    }
    spec.with_object(DataObject::new(
        "sweep_buf",
        4 << 10,
        Placement::new(Region::Lmu, false),
    ))
}

/// Builds the full sweep CSV (header plus one row per intensity step)
/// on the given engine: all isolation runs and co-runs go out as one
/// batch, and the CSV is assembled from the index-ordered results — so
/// the returned string is byte-identical for any worker count.
///
/// # Errors
///
/// Propagates simulation and model errors.
pub fn sweep_csv(
    engine: &ExecEngine,
    scenario: DeploymentScenario,
) -> Result<String, mbta::ExperimentError> {
    let platform = Platform::tc277_reference();
    let (app_core, load_core) = (CoreId(1), CoreId(2));
    let app_spec = workloads::control_loop(scenario, app_core, 42);
    let intensities: Vec<u32> = (0..=1_000).step_by(100).collect();

    let mut batch = vec![SimJob::Isolation {
        spec: app_spec.clone(),
        core: app_core,
    }];
    for &intensity in &intensities {
        let load_spec = scaled_contender(load_core, intensity);
        batch.push(SimJob::Isolation {
            spec: load_spec.clone(),
            core: load_core,
        });
        batch.push(SimJob::Corun {
            app: app_spec.clone(),
            app_core,
            load: load_spec,
            load_core,
        });
    }
    let mut outcomes = engine.run_batch(&batch)?.into_iter();
    // `run_batch` returns exactly one outcome per submitted job.
    let mut next = move || {
        outcomes
            .next()
            .unwrap_or_else(|| unreachable!("batch yields one outcome per job"))
    };
    let app = next().into_profile();

    let ftc = FtcModel::new(&platform);
    let ilp = IlpPtacModel::new(&platform, mbta::constraints_for(scenario));
    let ideal = IdealModel::new(&platform);
    let fsb = FsbModel::new(&platform);

    let mut csv = String::from(
        "intensity_permille,ftc_ratio,ilp_ratio,ideal_ratio,fsb_ratio,observed_ratio\n",
    );
    let iso = app.counters().ccnt as f64;
    for intensity in intensities {
        let load = next().into_profile();
        let observed = next().into_observed();
        csv.push_str(&format!(
            "{intensity},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            ftc.wcet_estimate(&app, &[&load])?.ratio(),
            ilp.wcet_estimate(&app, &[&load])?.ratio(),
            ideal.wcet_estimate(&app, &[&load])?.ratio(),
            fsb.wcet_estimate(&app, &[&load])?.ratio(),
            observed as f64 / iso,
        ));
    }
    Ok(csv)
}

/// How often the fault-tolerant evaluator degraded to the fTC bound
/// over a set of (app, contender) pairs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FallbackReport {
    /// Pairs bounded by the exact ILP-PTAC solve.
    pub ilp: usize,
    /// Pairs that fell back to the contender-independent fTC bound.
    pub ftc: usize,
}

impl FallbackReport {
    /// Fraction of pairs that fell back, in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        let total = self.ilp + self.ftc;
        if total == 0 {
            0.0
        } else {
            self.ftc as f64 / total as f64
        }
    }
}

impl std::fmt::Display for FallbackReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fallback rate: {}/{} pairs degraded to fTC ({:.0}%)",
            self.ftc,
            self.ilp + self.ftc,
            self.rate() * 100.0
        )
    }
}

/// Runs the fault-tolerant [`Evaluator`] over every (app, contender)
/// pair of the intensity sweep and counts which model produced each
/// bound. Isolation profiles come from the engine's memo cache, so
/// calling this after [`sweep_csv`] re-runs no simulations.
///
/// # Errors
///
/// Propagates engine and model errors.
pub fn sweep_fallback_report(
    engine: &ExecEngine,
    scenario: DeploymentScenario,
    node_budget: Option<u64>,
) -> Result<FallbackReport, mbta::ExperimentError> {
    let platform = Platform::tc277_reference();
    let (app_core, load_core) = (CoreId(1), CoreId(2));
    let app = engine.isolation(&workloads::control_loop(scenario, app_core, 42), app_core)?;

    let mut options = EvalOptions::for_scenario(mbta::constraints_for(scenario));
    if let Some(budget) = node_budget {
        options.ilp.node_budget = budget;
    }
    let evaluator = Evaluator::new(&platform, options);

    let mut report = FallbackReport::default();
    for intensity in (0..=1_000).step_by(100) {
        let load = engine.isolation(&scaled_contender(load_core, intensity), load_core)?;
        let evaluated = evaluator.bound(&app, &load)?;
        if evaluated.source.is_fallback() {
            report.ftc += 1;
        } else {
            report.ilp += 1;
        }
    }
    Ok(report)
}

/// [`sweep_fallback_report`] for one Figure 4 panel: the three
/// contender levels of `scenario` against the control-loop app, using
/// the same specs (and thus the same memoized profiles) as
/// [`mbta::figure4_panel_with`].
///
/// # Errors
///
/// Propagates engine and model errors.
pub fn panel_fallback_report(
    engine: &ExecEngine,
    scenario: DeploymentScenario,
    seed: u64,
    node_budget: Option<u64>,
) -> Result<FallbackReport, mbta::ExperimentError> {
    let platform = Platform::tc277_reference();
    let (app_core, load_core) = (CoreId(1), CoreId(2));
    let app = engine.isolation(&workloads::control_loop(scenario, app_core, seed), app_core)?;

    let mut options = EvalOptions::for_scenario(mbta::constraints_for(scenario));
    if let Some(budget) = node_budget {
        options.ilp.node_budget = budget;
    }
    let evaluator = Evaluator::new(&platform, options);

    let mut report = FallbackReport::default();
    for level in LoadLevel::all() {
        let spec =
            workloads::contender(scenario, level, load_core, seed.wrapping_add(level as u64));
        let load = engine.isolation(&spec, load_core)?;
        let evaluated = evaluator.bound(&app, &load)?;
        if evaluated.source.is_fallback() {
            report.ftc += 1;
        } else {
            report.ilp += 1;
        }
    }
    Ok(report)
}

/// Parses an optional `--ilp-budget N` from a binary's argument vector.
///
/// # Errors
///
/// Returns a human-readable message on a missing, non-numeric or zero
/// value.
pub fn ilp_budget_from_args(args: &[String]) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == "--ilp-budget") {
        Some(i) => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--ilp-budget requires a value".to_string())?;
            match v.parse::<u64>() {
                Ok(0) => Err("--ilp-budget must be at least 1".into()),
                Ok(n) => Ok(Some(n)),
                Err(_) => Err(format!("invalid --ilp-budget `{v}`")),
            }
        }
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_format() {
        assert_eq!(super::paper_vs(16, 16), "16 (paper: 16)");
        let e = contention::WcetEstimate {
            isolation_cycles: 100,
            contention_cycles: 50,
        };
        assert_eq!(super::fig4_cell(&e), "1.50x (150 cyc)");
    }

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn jobs_flag_parses() {
        assert_eq!(jobs_from_args(&argv("--jobs 4")).unwrap(), 4);
        assert_eq!(jobs_from_args(&argv("--scenario sc2 --jobs 2")).unwrap(), 2);
        assert!(jobs_from_args(&argv("")).unwrap() >= 1);
        assert!(jobs_from_args(&argv("--jobs")).is_err());
        assert!(jobs_from_args(&argv("--jobs zero")).is_err());
        assert!(jobs_from_args(&argv("--jobs 0")).is_err());
    }

    #[test]
    fn ilp_budget_flag_parses() {
        assert_eq!(ilp_budget_from_args(&argv("")).unwrap(), None);
        assert_eq!(
            ilp_budget_from_args(&argv("--ilp-budget 7")).unwrap(),
            Some(7)
        );
        assert!(ilp_budget_from_args(&argv("--ilp-budget")).is_err());
        assert!(ilp_budget_from_args(&argv("--ilp-budget 0")).is_err());
        assert!(ilp_budget_from_args(&argv("--ilp-budget x")).is_err());
    }

    #[test]
    fn fallback_report_formats() {
        let r = FallbackReport { ilp: 9, ftc: 3 };
        assert!((r.rate() - 0.25).abs() < 1e-12);
        assert_eq!(
            r.to_string(),
            "fallback rate: 3/12 pairs degraded to fTC (25%)"
        );
        assert_eq!(FallbackReport::default().rate(), 0.0);
    }

    #[test]
    fn scaled_contender_scales_to_nothing() {
        let idle = scaled_contender(CoreId(2), 0);
        let full = scaled_contender(CoreId(2), 1_000);
        assert_eq!(idle.segments.len(), 1);
        assert_eq!(full.segments.len(), 2);
    }
}
