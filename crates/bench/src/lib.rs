//! # `contention-bench` — the table/figure regeneration harness
//!
//! One binary per evaluation artefact of the paper:
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `table2` | Table 2 — max latency and min stall cycles per SRI target |
//! | `table3` | Table 3 — code/data placement constraints |
//! | `table6` | Table 6 — debug-counter readings, Scenarios 1 & 2 |
//! | `figure4` | Figure 4 — model predictions w.r.t. isolation (pass `--low-traffic` for the §4.2 real-world remark) |
//! | `ablation` | design-choice ablations of the ILP-PTAC model |
//!
//! Criterion benches (`cargo bench`) cover the ILP solver, the
//! simulator, the calibration campaign and model evaluation.

#![forbid(unsafe_code)]

use contention::WcetEstimate;

/// Formats paper-vs-measured cells for table output.
pub fn paper_vs(measured: impl std::fmt::Display, paper: impl std::fmt::Display) -> String {
    format!("{measured} (paper: {paper})")
}

/// Formats a WCET estimate as the Figure 4 ratio annotation.
pub fn fig4_cell(e: &WcetEstimate) -> String {
    format!("{:.2}x ({} cyc)", e.ratio(), e.bound_cycles())
}

#[cfg(test)]
mod tests {
    #[test]
    fn helpers_format() {
        assert_eq!(super::paper_vs(16, 16), "16 (paper: 16)");
        let e = contention::WcetEstimate {
            isolation_cycles: 100,
            contention_cycles: 50,
        };
        assert_eq!(super::fig4_cell(&e), "1.50x (150 cyc)");
    }
}
