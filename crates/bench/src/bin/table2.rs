//! Regenerates **Table 2** of the paper: maximum observable end-to-end
//! latency and minimum stall cycles per SRI target, derived by the
//! calibration microbenchmark campaign on the simulated TC277.
//!
//! ```text
//! cargo run -p contention-bench --bin table2 [-- --jobs N] [--journal <file> | --resume <file>]
//! ```
//!
//! The calibration campaign (28 probe runs) accepts the shared flags:
//! `--jobs N` sizes the engine, and `--journal`/`--resume` make the
//! campaign crash-safe (`--ilp-budget` is accepted for driver
//! uniformity; Table 2 runs no ILP solve).

use contention::{Operation, Platform, Target};
use contention_bench::{
    campaign_from_args, paper_vs, report_campaign, write_engine_report, CommonArgs,
};
use mbta::report::Table;
use mbta::BatchRunner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let common = CommonArgs::parse(&args)?;
    let telemetry = common.recorder("table2");
    let engine = common.engine_with(telemetry.as_ref());
    let campaign = campaign_from_args(&engine, &common, telemetry.as_deref())?;
    let runner: &dyn BatchRunner = match campaign.as_ref() {
        Some(c) => c,
        None => &engine,
    };
    let cal = mbta::calibrate_with(runner)?;
    let paper = Platform::tc277_reference();

    println!("Table 2: maximum latency and minimum stall cycles per SRI target");
    println!("(measured = calibration campaign on the simulator; paper = DAC'18 Table 2)\n");

    let mut t = Table::new(vec!["target (t)", "lmax", "cs^{t,co}", "cs^{t,da}"]);
    for target in [Target::Lmu, Target::Pf0, Target::Pf1, Target::Dfl] {
        let lmax_measured = Operation::all()
            .iter()
            .map(|o| cal.latency.get(target, *o))
            .max()
            .unwrap_or(0);
        let lmax_paper = Operation::all()
            .iter()
            .map(|o| paper.latency(target, *o))
            .max()
            .unwrap_or(0);
        let lmax = if target == Target::Lmu {
            paper_vs(
                format!("{lmax_measured} ({})", cal.lmu_dirty_latency),
                format!("{lmax_paper} ({})", paper.lmu_dirty_latency()),
            )
        } else {
            paper_vs(lmax_measured, lmax_paper)
        };
        let co = if target == Target::Dfl {
            "-".to_owned()
        } else {
            paper_vs(
                cal.stall.get(target, Operation::Code),
                paper.stall(target, Operation::Code),
            )
        };
        let da = paper_vs(
            cal.stall.get(target, Operation::Data),
            paper.stall(target, Operation::Data),
        );
        t.row(vec![target.to_string(), lmax, co, da]);
    }
    print!("{}", t.render());

    println!(
        "\nderived minima (Eqs. 2-3): cs_co_min = {}, cs_da_min = {}",
        cal.into_platform().cs_code_min(),
        cal.into_platform().cs_data_min()
    );

    let complete = report_campaign(campaign.as_ref(), telemetry.as_deref());
    write_engine_report(&engine, &common.envelope(&args[1..]));
    common.flush_telemetry(telemetry.as_ref())?;
    if !complete {
        std::process::exit(2);
    }
    Ok(())
}
