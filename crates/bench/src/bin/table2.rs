//! Regenerates **Table 2** of the paper: maximum observable end-to-end
//! latency and minimum stall cycles per SRI target, derived by the
//! calibration microbenchmark campaign on the simulated TC277.
//!
//! ```text
//! cargo run -p contention-bench --bin table2 [-- --jobs N]
//! ```

use contention::{Operation, Platform, Target};
use contention_bench::{engine_from_args, paper_vs, write_engine_report};
use mbta::report::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let engine = engine_from_args(&args)?;
    let cal = mbta::calibrate_with(&engine)?;
    let paper = Platform::tc277_reference();

    println!("Table 2: maximum latency and minimum stall cycles per SRI target");
    println!("(measured = calibration campaign on the simulator; paper = DAC'18 Table 2)\n");

    let mut t = Table::new(vec!["target (t)", "lmax", "cs^{t,co}", "cs^{t,da}"]);
    for target in [Target::Lmu, Target::Pf0, Target::Pf1, Target::Dfl] {
        let lmax_measured = Operation::all()
            .iter()
            .map(|o| cal.latency.get(target, *o))
            .max()
            .unwrap_or(0);
        let lmax_paper = Operation::all()
            .iter()
            .map(|o| paper.latency(target, *o))
            .max()
            .unwrap_or(0);
        let lmax = if target == Target::Lmu {
            paper_vs(
                format!("{lmax_measured} ({})", cal.lmu_dirty_latency),
                format!("{lmax_paper} ({})", paper.lmu_dirty_latency()),
            )
        } else {
            paper_vs(lmax_measured, lmax_paper)
        };
        let co = if target == Target::Dfl {
            "-".to_owned()
        } else {
            paper_vs(
                cal.stall.get(target, Operation::Code),
                paper.stall(target, Operation::Code),
            )
        };
        let da = paper_vs(
            cal.stall.get(target, Operation::Data),
            paper.stall(target, Operation::Data),
        );
        t.row(vec![target.to_string(), lmax, co, da]);
    }
    print!("{}", t.render());

    println!(
        "\nderived minima (Eqs. 2-3): cs_co_min = {}, cs_da_min = {}",
        cal.into_platform().cs_code_min(),
        cal.into_platform().cs_data_min()
    );

    write_engine_report(&engine);
    Ok(())
}
