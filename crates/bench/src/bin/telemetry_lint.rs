//! Schema lint for telemetry sinks — the CI gate behind the
//! determinism contract.
//!
//! ```text
//! telemetry_lint <file.jsonl> [--deny-warn] [--det-diff <other.jsonl>]
//! telemetry_lint --chrome <trace.json>
//! ```
//!
//! JSONL mode validates every record: it must parse, carry a known `k`
//! kind and a boolean `det`, and — the load-bearing check — a
//! `det:true` record must not contain wall-clock time, worker counts or
//! the timing-kernel choice anywhere in it (those belong exclusively to
//! the `det:false` profile record). `--deny-warn` additionally fails on
//! any `warn` record, so a golden CI run proves itself warning-free.
//! `--det-diff <other>` asserts the two files' deterministic subsets
//! are byte-identical — the cross-`--jobs` / cross-engine contract.
//!
//! Chrome mode validates a `trace_event` export: one JSON document with
//! a `traceEvents` array whose span events have the complete-span
//! phase, and per-track monotonically non-decreasing timestamps.

use obs::json::{parse, Json};

/// Record kinds the JSONL schema admits.
const KINDS: &[&str] = &[
    "meta", "span", "counter", "hist", "matrix", "table", "warn", "profile",
];

/// Keys that must never appear (at any depth) in a deterministic
/// record: they encode host/run conditions, not logical results.
const NONDET_ONLY_KEYS: &[&str] = &["wall_seconds", "jobs", "engine"];

/// Recursively searches `v` for any forbidden key.
fn find_forbidden(v: &Json) -> Option<&'static str> {
    match v {
        Json::Obj(pairs) => pairs.iter().find_map(|(k, inner)| {
            NONDET_ONLY_KEYS
                .iter()
                .find(|f| *f == k)
                .copied()
                .or_else(|| find_forbidden(inner))
        }),
        Json::Arr(items) => items.iter().find_map(find_forbidden),
        _ => None,
    }
}

/// Lints one JSONL document; returns the deterministic subset (for
/// `--det-diff`) or the first violation as an error message.
fn lint_jsonl(content: &str, deny_warn: bool) -> Result<String, String> {
    let mut det_subset = String::new();
    let mut records = 0usize;
    for (lineno, line) in content.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            return Err(format!("line {n}: blank line inside a JSONL stream"));
        }
        let v = parse(line).map_err(|e| format!("line {n}: {e}"))?;
        let kind = v
            .get("k")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {n}: missing string field `k`"))?;
        if !KINDS.contains(&kind) {
            return Err(format!("line {n}: unknown record kind `{kind}`"));
        }
        let det = v
            .get("det")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("line {n}: missing boolean field `det`"))?;
        if kind == "profile" && det {
            return Err(format!("line {n}: profile records must be det:false"));
        }
        if det {
            if let Some(key) = find_forbidden(&v) {
                return Err(format!(
                    "line {n}: deterministic record carries `{key}` \
                     (host/run data belongs to the profile record)"
                ));
            }
            det_subset.push_str(line);
            det_subset.push('\n');
        }
        if deny_warn && kind == "warn" {
            return Err(format!("line {n}: warning record present: {line}"));
        }
        records += 1;
    }
    if records == 0 {
        return Err("empty telemetry stream".to_string());
    }
    Ok(det_subset)
}

/// Validates a Chrome `trace_event` document.
fn lint_chrome(content: &str) -> Result<usize, String> {
    let v = parse(content).map_err(|e| e.to_string())?;
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;
    let mut last_ts: std::collections::BTreeMap<u64, u64> = Default::default();
    let mut spans = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        if ph != "X" {
            continue;
        }
        let tid = e
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing `tid`"))?;
        let ts = e
            .get("ts")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing `ts`"))?;
        if e.get("dur").and_then(Json::as_u64).is_none() {
            return Err(format!("event {i}: missing `dur`"));
        }
        if e.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i}: missing `name`"));
        }
        if last_ts.get(&tid).is_some_and(|&prev| ts < prev) {
            return Err(format!("event {i}: track {tid} timestamps went backwards"));
        }
        last_ts.insert(tid, ts);
        spans += 1;
    }
    if spans == 0 {
        return Err("trace contains no span events".to_string());
    }
    Ok(spans)
}

fn run(args: &[String]) -> Result<String, String> {
    let chrome = args.iter().any(|a| a == "--chrome");
    let deny_warn = args.iter().any(|a| a == "--deny-warn");
    let det_diff = match args.iter().position(|a| a == "--det-diff") {
        Some(i) => Some(
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .ok_or("--det-diff requires a path")?,
        ),
        None => None,
    };
    let path = args
        .iter()
        .skip(1)
        .zip(args.iter())
        .filter(|(v, prev)| !v.starts_with("--") && *prev != "--det-diff")
        .map(|(v, _)| v)
        .next()
        .ok_or("usage: telemetry_lint [--chrome] <file> [--deny-warn] [--det-diff <other>]")?;
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;

    if chrome {
        let spans = lint_chrome(&content)?;
        return Ok(format!("{path}: valid Chrome trace, {spans} span event(s)"));
    }

    let det = lint_jsonl(&content, deny_warn)?;
    if let Some(other) = det_diff {
        let other_content =
            std::fs::read_to_string(other).map_err(|e| format!("cannot read {other}: {e}"))?;
        let other_det = lint_jsonl(&other_content, deny_warn)?;
        if det != other_det {
            let diverging = det
                .lines()
                .zip(other_det.lines())
                .position(|(a, b)| a != b)
                .map(|i| format!("first divergence at det record {}", i + 1))
                .unwrap_or_else(|| "det subsets differ in length".to_string());
            return Err(format!(
                "deterministic subsets of {path} and {other} differ ({diverging})"
            ));
        }
        return Ok(format!(
            "{path}: schema OK; det subset identical to {other} ({} record(s))",
            det.lines().count()
        ));
    }
    Ok(format!(
        "{path}: schema OK ({} det record(s))",
        det.lines().count()
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match run(&args) {
        Ok(summary) => println!("{summary}"),
        Err(message) => {
            eprintln!("telemetry_lint: {message}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_stream_and_rejects_leaks() {
        let good = concat!(
            "{\"k\":\"meta\",\"det\":true,\"command\":\"x\"}\n",
            "{\"k\":\"span\",\"det\":true,\"id\":\"a\",\"ts\":0,\"dur\":5}\n",
            "{\"k\":\"profile\",\"det\":false,\"jobs\":4,\"wall_seconds\":0.1}\n",
        );
        let det = lint_jsonl(good, true).unwrap();
        assert_eq!(det.lines().count(), 2, "profile excluded from det subset");

        let leak = "{\"k\":\"counter\",\"det\":true,\"wall_seconds\":1.0}\n";
        assert!(lint_jsonl(leak, false)
            .unwrap_err()
            .contains("wall_seconds"));

        let nested_leak = "{\"k\":\"span\",\"det\":true,\"args\":{\"jobs\":2}}\n";
        assert!(lint_jsonl(nested_leak, false).is_err());

        let det_profile = "{\"k\":\"profile\",\"det\":true}\n";
        assert!(lint_jsonl(det_profile, false).is_err());

        let unknown = "{\"k\":\"mystery\",\"det\":true}\n";
        assert!(lint_jsonl(unknown, false).is_err());

        let warn = "{\"k\":\"warn\",\"det\":true,\"code\":\"x\",\"count\":1}\n";
        assert!(lint_jsonl(warn, false).is_ok());
        assert!(lint_jsonl(warn, true).is_err());

        let matrix = "{\"k\":\"matrix\",\"det\":true,\"name\":\"attribution.wait\",\
                      \"rows\":[\"lmu/c0\"],\"cols\":[\"c1\"],\"cells\":[11]}\n";
        assert!(lint_jsonl(matrix, true).is_ok());
        let table = "{\"k\":\"table\",\"det\":true,\"name\":\"tightness.sc1\",\
                     \"cols\":[\"bound\"],\"rows\":[[3200]]}\n";
        assert!(lint_jsonl(table, true).is_ok());
    }

    #[test]
    fn chrome_lint_checks_structure_and_monotonicity() {
        let good = r#"{"traceEvents":[
            {"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"x"}},
            {"ph":"X","pid":1,"tid":1,"ts":0,"dur":5,"name":"a","args":{}},
            {"ph":"X","pid":1,"tid":1,"ts":5,"dur":3,"name":"b","args":{}}
        ],"displayTimeUnit":"ms"}"#;
        assert_eq!(lint_chrome(good).unwrap(), 2);

        let backwards = r#"{"traceEvents":[
            {"ph":"X","pid":1,"tid":1,"ts":9,"dur":5,"name":"a"},
            {"ph":"X","pid":1,"tid":1,"ts":2,"dur":3,"name":"b"}
        ]}"#;
        assert!(lint_chrome(backwards).unwrap_err().contains("backwards"));

        assert!(lint_chrome("{}").is_err());
        assert!(lint_chrome(r#"{"traceEvents":[]}"#).is_err());
    }

    #[test]
    fn real_streams_pass_the_lint() {
        let t = mbta::Telemetry::new("lint-self-test");
        t.record_solve("solve:a", 10, false);
        // A job with attribution stats, so the stream carries matrix
        // records through the lint.
        let mut stats = tc27x_sim::SimStats::default();
        stats.attribution.charge(
            tc27x_sim::SriTarget::Lmu.index(),
            0,
            1,
            tc27x_sim::AccessClass::Data,
            11,
        );
        let job = mbta::SimJob::Isolation {
            spec: workloads::control_loop(
                tc27x_sim::DeploymentScenario::Scenario1,
                tc27x_sim::CoreId(0),
                1,
            ),
            core: tc27x_sim::CoreId(0),
        };
        t.record_job(7, &job, 100, Some(&stats));
        t.record_engine(&mbta::EngineReport {
            jobs: 2,
            simulations_run: 1,
            cache_hits: 0,
            cache_misses: 1,
            wall_seconds: 0.25,
        });
        let jsonl = t.render(mbta::Format::Jsonl);
        lint_jsonl(&jsonl, true).unwrap();
        let chrome = t.render(mbta::Format::Chrome);
        lint_chrome(&chrome).unwrap();
    }
}
