//! Fine-grained contention sweep: the Figure 4 experiment extended from
//! three contender levels to a continuous intensity axis. Emits a CSV
//! (stdout) of contender intensity vs the fTC, ILP-PTAC, ideal and
//! FSB-aware bounds plus the observed co-run slowdown — the data a plot
//! of the full trade-off curve needs.
//!
//! ```text
//! cargo run -p contention-bench --bin sweep [-- --scenario sc1|sc2] > sweep.csv
//! ```

use contention::{
    ContentionModel, FsbModel, FtcModel, IdealModel, IlpPtacModel, Platform,
};
use tc27x_sim::{CoreId, DataObject, DeploymentScenario, Pattern, Placement, Program, Region,
                TaskSpec};
use workloads::control_loop;

/// A parameterised contender with traffic scaled by `intensity` per
/// mille of the reference stream.
fn scaled_contender(core: CoreId, intensity_permille: u32) -> TaskSpec {
    // Reference: 4000 LMU accesses and 2000 flash code lines at 1000‰.
    let accesses = (4_000u64 * intensity_permille as u64 / 1_000) as u32;
    let code_iters = (40u64 * intensity_permille as u64 / 1_000) as u32;
    let mut spec = TaskSpec::empty(format!("sweep-load-{intensity_permille}"));
    if code_iters > 0 {
        let code_prog = Program::build(|b| {
            b.repeat(code_iters, |b| {
                for _ in 0..640 {
                    b.compute(1);
                }
            });
        });
        spec = spec.with_segment(code_prog, Placement::new(Region::Pflash0, true));
    }
    if accesses > 0 {
        let data_prog = Program::build(|b| {
            b.repeat(accesses, |b| {
                b.load("sweep_buf", Pattern::Sequential);
                b.compute(4);
            });
        });
        spec = spec.with_segment(data_prog, Placement::pspr(core));
    } else {
        let idle = Program::build(|b| {
            b.compute(100);
        });
        spec = spec.with_segment(idle, Placement::pspr(core));
    }
    spec.with_object(DataObject::new(
        "sweep_buf",
        4 << 10,
        Placement::new(Region::Lmu, false),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let scenario = match args.iter().position(|a| a == "--scenario") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("sc2") => DeploymentScenario::Scenario2,
            _ => DeploymentScenario::Scenario1,
        },
        None => DeploymentScenario::Scenario1,
    };

    let platform = Platform::tc277_reference();
    let (app_core, load_core) = (CoreId(1), CoreId(2));
    let app_spec = control_loop(scenario, app_core, 42);
    let app = mbta::isolation_profile(&app_spec, app_core)?;

    let ftc = FtcModel::new(&platform);
    let ilp = IlpPtacModel::new(&platform, mbta::constraints_for(scenario));
    let ideal = IdealModel::new(&platform);
    let fsb = FsbModel::new(&platform);

    println!("intensity_permille,ftc_ratio,ilp_ratio,ideal_ratio,fsb_ratio,observed_ratio");
    let iso = app.counters().ccnt as f64;
    for intensity in (0..=1_000).step_by(100) {
        let load_spec = scaled_contender(load_core, intensity);
        let load = mbta::isolation_profile(&load_spec, load_core)?;
        let observed = mbta::observed_corun(&app_spec, app_core, &load_spec, load_core)?;
        let row = [
            ftc.wcet_estimate(&app, &[&load])?.ratio(),
            ilp.wcet_estimate(&app, &[&load])?.ratio(),
            ideal.wcet_estimate(&app, &[&load])?.ratio(),
            fsb.wcet_estimate(&app, &[&load])?.ratio(),
            observed as f64 / iso,
        ];
        println!(
            "{intensity},{:.4},{:.4},{:.4},{:.4},{:.4}",
            row[0], row[1], row[2], row[3], row[4]
        );
    }
    Ok(())
}
