//! Fine-grained contention sweep: the Figure 4 experiment extended from
//! three contender levels to a continuous intensity axis. Emits a CSV
//! (stdout) of contender intensity vs the fTC, ILP-PTAC, ideal and
//! FSB-aware bounds plus the observed co-run slowdown — the data a plot
//! of the full trade-off curve needs.
//!
//! All simulations of the sweep go out as one engine batch, so
//! `--jobs N` spreads them over N workers with byte-identical CSV
//! output (see `contention_bench::sweep_csv`).
//!
//! ```text
//! cargo run -p contention-bench --bin sweep [-- --scenario sc1|sc2] [--jobs N] > sweep.csv
//! ```

use contention_bench::{engine_from_args, sweep_csv, write_engine_report};
use tc27x_sim::DeploymentScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let scenario = match args.iter().position(|a| a == "--scenario") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("sc2") => DeploymentScenario::Scenario2,
            _ => DeploymentScenario::Scenario1,
        },
        None => DeploymentScenario::Scenario1,
    };
    let engine = engine_from_args(&args)?;

    print!("{}", sweep_csv(&engine, scenario)?);

    write_engine_report(&engine);
    Ok(())
}
