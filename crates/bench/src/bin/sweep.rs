//! Fine-grained contention sweep: the Figure 4 experiment extended from
//! three contender levels to a continuous intensity axis. Emits a CSV
//! (stdout) of contender intensity vs the fTC, ILP-PTAC, ideal and
//! FSB-aware bounds plus the observed co-run slowdown — the data a plot
//! of the full trade-off curve needs.
//!
//! All simulations of the sweep go out as one engine batch, so
//! `--jobs N` spreads them over N workers with byte-identical CSV
//! output (see `contention_bench::sweep_csv`).
//!
//! ```text
//! cargo run -p contention-bench --bin sweep [-- --scenario sc1|sc2] [--jobs N] [--ilp-budget N] > sweep.csv
//! ```
//!
//! After the CSV, the fault-tolerant evaluator re-runs every pair
//! (profiles come from the memo cache) and reports its fTC fallback
//! rate on stderr; `--ilp-budget N` caps the ILP node budget for that
//! report. The CSV itself always uses the exact models, so stdout stays
//! byte-identical regardless of the budget.

use contention_bench::{
    engine_from_args, ilp_budget_from_args, sweep_csv, sweep_fallback_report, write_engine_report,
};
use tc27x_sim::DeploymentScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let scenario = match args.iter().position(|a| a == "--scenario") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("sc2") => DeploymentScenario::Scenario2,
            _ => DeploymentScenario::Scenario1,
        },
        None => DeploymentScenario::Scenario1,
    };
    let budget = ilp_budget_from_args(&args)?;
    let engine = engine_from_args(&args)?;

    print!("{}", sweep_csv(&engine, scenario)?);

    eprintln!("{}", sweep_fallback_report(&engine, scenario, budget)?);
    write_engine_report(&engine);
    Ok(())
}
