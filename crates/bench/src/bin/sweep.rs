//! Fine-grained contention sweep: the Figure 4 experiment extended from
//! three contender levels to a continuous intensity axis. Emits a CSV
//! (stdout) of contender intensity vs the fTC, ILP-PTAC, ideal and
//! FSB-aware bounds plus the observed co-run slowdown — the data a plot
//! of the full trade-off curve needs.
//!
//! All simulations of the sweep go out as one engine batch, so
//! `--jobs N` spreads them over N workers with byte-identical CSV
//! output (see `contention_bench::sweep_csv`).
//!
//! ```text
//! cargo run -p contention-bench --bin sweep [-- --scenario sc1|sc2|low] [--platform NAME] [--jobs N] [--ilp-budget N] > sweep.csv
//! cargo run -p contention-bench --bin sweep -- --journal sweep.journal > sweep.csv
//! cargo run -p contention-bench --bin sweep -- --resume sweep.journal > sweep.csv
//! ```
//!
//! `--platform NAME` selects the simulated machine (see
//! `platform::PlatformDesc::names()`): core placement, slave topology
//! and arbitration all follow the description, and the models derive
//! their tables from it. The default is the paper's `tc27x`.
//!
//! With `--journal <file>` every completed simulation is appended to a
//! crash-safe journal; after an interruption, `--resume <file>` replays
//! the completed jobs and re-executes only the missing ones — the CSV
//! is byte-identical to an uninterrupted run at any `--jobs N`. Under a
//! campaign the sweep also degrades gracefully: a row whose simulation
//! stays unrecovered is skipped (and named on stderr) instead of
//! aborting the whole sweep.
//!
//! After the CSV, the fault-tolerant evaluator re-runs every pair
//! (profiles come from the memo cache) and reports its fTC fallback
//! rate on stderr; `--ilp-budget N` caps the ILP node budget for that
//! report. The CSV itself always uses the exact models, so stdout stays
//! byte-identical regardless of the budget.

use contention_bench::{
    campaign_from_args, report_campaign, sweep_csv, sweep_csv_partial, sweep_fallback_report,
    write_engine_report, CommonArgs,
};
use tc27x_sim::DeploymentScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let (scenario, scenario_label) = match args.iter().position(|a| a == "--scenario") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("sc2") => (DeploymentScenario::Scenario2, "sc2"),
            Some("low") => (DeploymentScenario::LowTraffic, "low"),
            _ => (DeploymentScenario::Scenario1, "sc1"),
        },
        None => (DeploymentScenario::Scenario1, "sc1"),
    };
    let common = CommonArgs::parse(&args)?;
    let telemetry = common.recorder(&format!("sweep {scenario_label}"));
    if let Some(t) = &telemetry {
        t.meta("scenario", mbta::Val::str(scenario_label));
    }
    let engine = common.engine_with(telemetry.as_ref());
    let campaign = campaign_from_args(&engine, &common, telemetry.as_deref())?;

    let mut sweep_complete = true;
    match campaign.as_ref() {
        // Under a campaign, degrade gracefully: keep every computable
        // row and name the skipped ones instead of aborting.
        Some(runner) => {
            let partial = sweep_csv_partial(runner, scenario)?;
            print!("{}", partial.csv);
            if !partial.is_complete() {
                sweep_complete = false;
                eprintln!(
                    "sweep: {} row(s) skipped (intensities {:?} permille) — resume to recover",
                    partial.skipped.len(),
                    partial.skipped
                );
            }
            eprintln!(
                "{}",
                sweep_fallback_report(runner, scenario, common.ilp_budget, telemetry.as_deref())?
            );
        }
        None => {
            print!("{}", sweep_csv(&engine, scenario)?);
            eprintln!(
                "{}",
                sweep_fallback_report(&engine, scenario, common.ilp_budget, telemetry.as_deref())?
            );
        }
    }

    let campaign_complete = report_campaign(campaign.as_ref(), telemetry.as_deref());
    write_engine_report(&engine, &common.envelope(&args[1..]));
    if let Some(t) = &telemetry {
        eprint!("{}", mbta::report::reproducibility_footer(t));
    }
    common.flush_telemetry(telemetry.as_ref())?;
    if !(sweep_complete && campaign_complete) {
        std::process::exit(2);
    }
    Ok(())
}
