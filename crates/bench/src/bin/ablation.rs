//! Ablation study of the ILP-PTAC design choices (DESIGN.md E7):
//!
//! 1. **contender constraints** (Eqs. 22–23) on vs off — off yields the
//!    fully time-composable ILP variant the paper mentions;
//! 2. **scenario tailoring** (Table 5) on vs off;
//! 3. **stall-equation form**: budget (`≤`, default) vs the paper's
//!    literal strict equalities.
//!
//! ```text
//! cargo run -p contention-bench --bin ablation [-- --jobs N] [--ilp-budget N]
//! ```
//!
//! `--ilp-budget N` caps the branch-and-bound node budget of every
//! ILP-PTAC variant (a budget exhaustion shows up as an error cell, not
//! an abort); `--journal`/`--resume` run the profile measurements as a
//! crash-safe campaign. Every variant row asks for the same three
//! contender profiles, so all but the first pass are served from the
//! engine's memo cache — the emitted `BENCH_engine.json` shows the hit
//! rate.

use contention::{
    ContentionModel, FsbModel, FtcModel, IlpPtacModel, IlpPtacOptions, Platform,
    ScenarioConstraints,
};
use contention_bench::{campaign_from_args, report_campaign, write_engine_report, CommonArgs};
use mbta::report::Table;
use mbta::BatchRunner;
use tc27x_sim::{CoreId, DeploymentScenario};
use workloads::{contender, control_loop, LoadLevel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let common = CommonArgs::parse(&args)?;
    let telemetry = common.recorder("ablation");
    let engine = common.engine_with(telemetry.as_ref());
    let campaign = campaign_from_args(&engine, &common, telemetry.as_deref())?;
    let runner: &dyn BatchRunner = match campaign.as_ref() {
        Some(c) => c,
        None => &engine,
    };
    let budgeted = |mut opts: IlpPtacOptions| {
        if let Some(budget) = common.ilp_budget {
            opts.node_budget = budget;
        }
        opts
    };
    let platform = Platform::tc277_reference();
    let scenario = DeploymentScenario::Scenario1;
    let app = runner.isolation(&control_loop(scenario, CoreId(1), 42), CoreId(1))?;

    println!("ILP-PTAC ablations, Scenario 1, vs contender load\n");

    let variants: Vec<(&str, IlpPtacOptions)> = vec![
        (
            "full (tailored, contender, budget)",
            budgeted(IlpPtacOptions::for_scenario(
                ScenarioConstraints::scenario1(),
            )),
        ),
        (
            "no scenario tailoring",
            budgeted(IlpPtacOptions::for_scenario(
                ScenarioConstraints::unconstrained(),
            )),
        ),
        (
            "no contender constraints (fully TC)",
            budgeted(IlpPtacOptions {
                contender_constraints: false,
                ..IlpPtacOptions::for_scenario(ScenarioConstraints::scenario1())
            }),
        ),
        (
            "strict stall equalities",
            budgeted(IlpPtacOptions {
                strict_stall_equality: true,
                ..IlpPtacOptions::for_scenario(ScenarioConstraints::scenario1())
            }),
        ),
    ];

    let mut t = Table::new(vec!["variant", "L-Load", "M-Load", "H-Load"]);
    for (name, opts) in &variants {
        let model = IlpPtacModel::with_options(&platform, opts.clone());
        let mut row = vec![name.to_string()];
        for level in LoadLevel::all() {
            let load_spec = contender(scenario, level, CoreId(2), 7);
            let load = runner.isolation(&load_spec, CoreId(2))?;
            match model.wcet_estimate(&app, &[&load]) {
                Ok(est) => row.push(format!("{:.2}x", est.ratio())),
                Err(e) => row.push(format!("error: {e}")),
            }
        }
        t.row(row);
    }
    // The fTC closed form as the outer reference point.
    let ftc = FtcModel::new(&platform);
    let mut row = vec!["fTC closed form (reference)".to_string()];
    for level in LoadLevel::all() {
        let load_spec = contender(scenario, level, CoreId(2), 7);
        let load = runner.isolation(&load_spec, CoreId(2))?;
        row.push(format!(
            "{:.2}x",
            ftc.wcet_estimate(&app, &[&load])?.ratio()
        ));
    }
    t.row(row);
    print!("{}", t.render());

    println!("\nreading guide: tailoring tightens the bound; dropping contender");
    println!("constraints makes it load-invariant (fully time-composable); the");
    println!("budget stall form matches strict equalities whenever the counter");
    println!("values are divisible, and stays feasible when they are not.");

    // --- §4.3: the FSB reduction of the cross-bar model -------------
    println!("\ncross-bar vs FSB reduction (§4.3: 'the FSB model is a reduced");
    println!("case for the more generic cross-bar model'):\n");
    let mut t = Table::new(vec!["model", "L-Load", "M-Load", "H-Load"]);
    let fsb_aware = FsbModel::new(&platform);
    let fsb_ftc = FsbModel::new(&platform).fully_time_composable();
    let xbar = IlpPtacModel::with_options(
        &platform,
        budgeted(IlpPtacOptions::for_scenario(
            ScenarioConstraints::scenario1(),
        )),
    );
    let xbar_ftc = FtcModel::new(&platform);
    for (name, model) in [
        ("cross-bar ILP-PTAC", &xbar as &dyn ContentionModel),
        ("FSB contender-aware", &fsb_aware as &dyn ContentionModel),
        ("cross-bar fTC", &xbar_ftc as &dyn ContentionModel),
        ("FSB fully TC", &fsb_ftc as &dyn ContentionModel),
    ] {
        let mut row = vec![name.to_string()];
        for level in LoadLevel::all() {
            let load_spec = contender(scenario, level, CoreId(2), 7);
            let load = runner.isolation(&load_spec, CoreId(2))?;
            row.push(format!(
                "{:.2}x",
                model.wcet_estimate(&app, &[&load])?.ratio()
            ));
        }
        t.row(row);
    }
    print!("{}", t.render());
    println!("\nthe per-slave (cross-bar) models dominate their single-bus");
    println!("reductions in every column — §4.3's subsumption claim, measured.");

    let complete = report_campaign(campaign.as_ref(), telemetry.as_deref());
    write_engine_report(&engine, &common.envelope(&args[1..]));
    common.flush_telemetry(telemetry.as_ref())?;
    if !complete {
        std::process::exit(2);
    }
    Ok(())
}
