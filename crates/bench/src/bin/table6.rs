//! Regenerates **Table 6** of the paper: debug-counter readings for
//! Scenarios 1 and 2, with the application under analysis on core 1 and
//! the H-Load contender on core 2.
//!
//! Absolute magnitudes differ from the paper (our workloads are scaled
//! down ~50x to keep simulation fast); the *structure* — which counters
//! are zero, the relative sizes — is the reproduced artefact.
//!
//! ```text
//! cargo run -p contention-bench --bin table6 [-- --jobs N] [--journal <file> | --resume <file>]
//! ```
//!
//! Accepts the shared driver flags; `--journal`/`--resume` run both
//! scenario blocks as a crash-safe campaign.

use contention::IsolationProfile;
use contention_bench::{campaign_from_args, report_campaign, write_engine_report, CommonArgs};
use mbta::report::Table;
use mbta::BatchRunner;
use tc27x_sim::DeploymentScenario;

fn row(label: &str, p: &IsolationProfile) -> Vec<String> {
    let c = p.counters();
    vec![
        label.to_owned(),
        c.pcache_miss.to_string(),
        c.dcache_miss_clean.to_string(),
        c.dcache_miss_dirty.to_string(),
        c.pmem_stall.to_string(),
        c.dmem_stall.to_string(),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let common = CommonArgs::parse(&args)?;
    let telemetry = common.recorder("table6");
    let engine = common.engine_with(telemetry.as_ref());
    let campaign = campaign_from_args(&engine, &common, telemetry.as_deref())?;
    let runner: &dyn BatchRunner = match campaign.as_ref() {
        Some(c) => c,
        None => &engine,
    };

    println!("Table 6: counter readings for Scenarios 1 and 2");
    println!("(application on core 1, H-Load contender on core 2)\n");

    let mut t = Table::new(vec!["", "PM", "DMC", "DMD", "PS", "DS"]);
    for (label, scenario) in [
        ("Sc1", DeploymentScenario::Scenario1),
        ("Sc2", DeploymentScenario::Scenario2),
    ] {
        let block = mbta::table6_block_with(runner, scenario, 42)?;
        t.row(row(&format!("{label} Core1"), &block.core1));
        t.row(row(&format!("{label} Core2"), &block.core2));
    }
    print!("{}", t.render());

    println!("\npaper reference (absolute values, unscaled):");
    println!("  Sc1 Core1: PM=236544 DMC=0   DMD=0 PS=3421242 DS=8345056");
    println!("  Sc1 Core2: PM=120594 DMC=0   DMD=0 PS=1744167 DS=4251811");
    println!("  Sc2 Core1: PM=458394 DMC=200 DMD=0 PS=2753995 DS=86371");
    println!("  Sc2 Core2: PM=233694 DMC=200 DMD=0 PS=1404145 DS=42826");
    println!("\nstructural checks reproduced: DMD = 0 everywhere; Sc1 has no");
    println!("cacheable data misses; Sc2 data stalls are a small fraction of");
    println!("code stalls; contender traffic is roughly half the app's.");

    let complete = report_campaign(campaign.as_ref(), telemetry.as_deref());
    write_engine_report(&engine, &common.envelope(&args[1..]));
    if let Some(t) = &telemetry {
        // The reproducibility footer goes under the table: how the
        // numbers above were obtained, from deterministic counters only.
        print!("{}", mbta::report::reproducibility_footer(t));
    }
    common.flush_telemetry(telemetry.as_ref())?;
    if !complete {
        std::process::exit(2);
    }
    Ok(())
}
