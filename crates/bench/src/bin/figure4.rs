//! Regenerates **Figure 4** of the paper: model predictions w.r.t.
//! execution in isolation, for both deployment scenarios and the three
//! contender load levels — plus the observed co-run execution time the
//! bounds must dominate.
//!
//! ```text
//! cargo run -p contention-bench --bin figure4 [-- --jobs N]
//! cargo run -p contention-bench --bin figure4 -- --low-traffic
//! ```
//!
//! `--low-traffic` runs the §4.2 closing-remark variant: a realistic
//! scratchpad-dominant application whose contention bounds drop to the
//! ~10% range the paper reports for real automotive use cases.
//! `--jobs N` sizes the experiment engine (default: all cores); each
//! panel's seven simulations run as one batch. Each panel also reports
//! the fault-tolerant evaluator's fTC fallback rate on stderr;
//! `--ilp-budget N` caps the ILP node budget for that report.
//! `--journal <file>` / `--resume <file>` run the panels as a
//! crash-safe campaign (see `contention_bench::campaign_from_args`).

use contention::Platform;
use contention_bench::{
    campaign_from_args, fig4_cell, panel_fallback_report, report_campaign, write_engine_report,
    CommonArgs,
};
use mbta::report::{ratio, Table};
use mbta::BatchRunner;
use tc27x_sim::DeploymentScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let low_traffic = args.iter().any(|a| a == "--low-traffic");
    let common = CommonArgs::parse(&args)?;
    let budget = common.ilp_budget;
    let telemetry = common.recorder("figure4");
    if let Some(t) = &telemetry {
        t.meta(
            "variant",
            mbta::Val::str(if low_traffic {
                "low-traffic"
            } else {
                "standard"
            }),
        );
    }
    let engine = common.engine_with(telemetry.as_ref());
    let campaign = campaign_from_args(&engine, &common, telemetry.as_deref())?;
    let runner: &dyn BatchRunner = match campaign.as_ref() {
        Some(c) => c,
        None => &engine,
    };
    let platform = Platform::tc277_reference();

    let scenarios: &[(DeploymentScenario, &str)] = if low_traffic {
        &[(
            DeploymentScenario::LowTraffic,
            "real-world-like (low SRI traffic)",
        )]
    } else {
        &[
            (DeploymentScenario::Scenario1, "Scenario 1"),
            (DeploymentScenario::Scenario2, "Scenario 2"),
        ]
    };

    println!("Figure 4: model predictions w.r.t. execution in isolation");
    println!("(ratios are bound/isolation; 'observed' is the measured co-run)\n");

    for (scenario, label) in scenarios {
        let panel = mbta::figure4_panel_with(runner, *scenario, &platform, 42)?;
        eprintln!(
            "{label}: {}",
            panel_fallback_report(runner, *scenario, 42, budget, telemetry.as_deref())?
        );
        println!(
            "{label}  —  isolation CCNT = {} cycles",
            panel.app.counters().ccnt
        );
        let mut t = Table::new(vec!["contender", "fTC", "ILP-PTAC", "ideal", "observed"]);
        for cell in panel.cells.iter().rev() {
            t.row(vec![
                cell.level.to_string(),
                fig4_cell(&cell.ftc),
                fig4_cell(&cell.ilp),
                fig4_cell(&cell.ideal),
                format!(
                    "{}x ({} cyc)",
                    ratio(cell.observed_ratio()),
                    cell.observed_cycles
                ),
            ]);
        }
        print!("{}", t.render());
        println!(
            "sound: {}\n",
            if panel.all_bounds_sound() {
                "yes — every model prediction upper-bounds the observed co-run"
            } else {
                "NO — a bound was violated"
            }
        );
    }

    if !low_traffic {
        println!("paper reference: Scenario 1 — fTC 1.95x, ILP 1.49x (H) to 1.24x (L);");
        println!("                 Scenario 2 — fTC 2.33x, ILP 1.67x (H) to 1.34x (L).");
        println!("shape to check: fTC load-invariant and ~2x pessimistic; ILP adapts");
        println!("to contender load and stays roughly below half the fTC contention.");
    } else {
        println!("paper reference: real-world use cases show much lower contention");
        println!("bounds (~10%) than the 30-40% of the stressing benchmarks.");
    }

    let complete = report_campaign(campaign.as_ref(), telemetry.as_deref());
    write_engine_report(&engine, &common.envelope(&args[1..]));
    if let Some(t) = &telemetry {
        // The reproducibility footer goes under the figure: how the
        // numbers above were obtained, from deterministic counters only.
        print!("{}", mbta::report::reproducibility_footer(t));
    }
    common.flush_telemetry(telemetry.as_ref())?;
    if !complete {
        std::process::exit(2);
    }
    Ok(())
}
