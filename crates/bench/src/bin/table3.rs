//! Regenerates **Table 3** of the paper: the architectural constraints
//! on code/data placement w.r.t. the SRI slaves, as enforced by the
//! linker's placement validator.
//!
//! ```text
//! cargo run -p contention-bench --bin table3 [-- --jobs N]
//! ```
//!
//! Table 3 needs no simulation, but the binary still takes the common
//! flags (`--jobs`, `--ilp-budget`, `--journal`/`--resume`) and emits
//! `BENCH_engine.json` (with zero runs) so the evaluation driver can
//! treat all six artefact binaries uniformly. A journal written here
//! records nothing beyond its header — there are no jobs to journal.

use contention_bench::{campaign_from_args, report_campaign, write_engine_report, CommonArgs};
use mbta::report::Table;
use tc27x_sim::{AccessClass, Placement, Region};

fn cell(class: AccessClass, region: Region, cacheable: bool) -> String {
    if Placement::new(region, cacheable).validate(class).is_ok() {
        "ok".into()
    } else {
        "x".into()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let common = CommonArgs::parse(&args)?;
    let telemetry = common.recorder("table3");
    let engine = common.engine_with(telemetry.as_ref());
    let campaign = campaign_from_args(&engine, &common, telemetry.as_deref())?;

    println!("Table 3: constraints on code/data placement w.r.t. SRI slaves");
    println!("('ok' = admissible, 'x' = forbidden; matches the paper cell for cell)\n");

    let mut t = Table::new(vec!["", "pf0", "pf1", "dfl", "LMU"]);
    let regions = [
        Region::Pflash0,
        Region::Pflash1,
        Region::Dflash,
        Region::Lmu,
    ];
    for (label, class, cacheable) in [
        ("Code $", AccessClass::Code, true),
        ("Code n$", AccessClass::Code, false),
        ("Data $", AccessClass::Data, true),
        ("Data n$", AccessClass::Data, false),
    ] {
        let mut row = vec![label.to_owned()];
        row.extend(regions.iter().map(|r| cell(class, *r, cacheable)));
        t.row(row);
    }
    print!("{}", t.render());

    // The paper's Table 3 admits cacheable code/data in every slave but
    // dfl; non-cacheable data only in dfl and the LMU.
    println!("\npaper reference:");
    println!("  Code $ : ok ok x ok     Code n$: ok ok x ok");
    println!("  Data $ : ok ok x ok     Data n$: x  x  ok ok");

    report_campaign(campaign.as_ref(), telemetry.as_deref());
    write_engine_report(&engine, &common.envelope(&args[1..]));
    common.flush_telemetry(telemetry.as_ref())?;
    Ok(())
}
