//! Perf-regression gate — diffs measured speedup ratios against
//! committed floors.
//!
//! ```text
//! perf_gate [<baseline.json>] [<measured.json>]
//! ```
//!
//! The baseline (default `BENCH_baseline.json`, committed at the repo
//! root) carries a `floors` object mapping ratio names to the minimum
//! acceptable tick-over-event speedup. The measured file (default
//! `BENCH_sim.json`, written by the `sim_throughput` bench) carries the
//! machine-readable `ratios` member. Every floor must have a measured
//! ratio at or above it; a missing ratio is itself a failure, so
//! silently dropping a benchmark from the suite cannot pass the gate.
//!
//! Floors are deliberately conservative relative to typical measured
//! ratios: shared CI runners are noisy, and the gate exists to catch
//! structural regressions (an engine suddenly slower than the reference
//! stepper, the memo losing its co-run advantage), not single-digit
//! percentage drift.

use obs::json::{parse, Json};
use std::process::ExitCode;

/// Loads a JSON document and extracts one named object member as
/// `(key, f64)` pairs, in file order.
fn load_member(path: &str, member: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let obj = doc
        .get(member)
        .ok_or_else(|| format!("{path}: missing \"{member}\" object"))?;
    let Json::Obj(pairs) = obj else {
        return Err(format!("{path}: \"{member}\" is not an object"));
    };
    pairs
        .iter()
        .map(|(k, v)| {
            v.as_f64()
                .map(|f| (k.clone(), f))
                .ok_or_else(|| format!("{path}: {member}.{k} is not a number"))
        })
        .collect()
}

fn run(baseline_path: &str, measured_path: &str) -> Result<bool, String> {
    let floors = load_member(baseline_path, "floors")?;
    if floors.is_empty() {
        return Err(format!("{baseline_path}: \"floors\" object is empty"));
    }
    let ratios = load_member(measured_path, "ratios")?;

    println!("perf gate: {measured_path} vs floors in {baseline_path}");
    println!("{:<32} {:>9} {:>9}  verdict", "ratio", "floor", "measured");
    let mut ok = true;
    for (name, floor) in &floors {
        match ratios.iter().find(|(k, _)| k == name) {
            Some((_, measured)) if measured >= floor => {
                println!("{name:<32} {floor:>9.3} {measured:>9.3}  ok");
            }
            Some((_, measured)) => {
                println!("{name:<32} {floor:>9.3} {measured:>9.3}  BELOW FLOOR");
                ok = false;
            }
            None => {
                println!("{name:<32} {floor:>9.3} {:>9}  MISSING", "-");
                ok = false;
            }
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline = args.first().map_or("BENCH_baseline.json", String::as_str);
    let measured = args.get(1).map_or("BENCH_sim.json", String::as_str);
    match run(baseline, measured) {
        Ok(true) => {
            println!("perf gate: all floors hold");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("perf gate: FAILED — at least one ratio below its floor");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("perf gate: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tmp(name: &str, body: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, body).expect("write tmp");
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn gate_passes_when_ratios_meet_floors() {
        let b = write_tmp(
            "perf_gate_base_ok.json",
            "{\"floors\": {\"a\": 1.5, \"b\": 0.9}}",
        );
        let m = write_tmp(
            "perf_gate_meas_ok.json",
            "{\"ratios\": {\"a\": 2.0, \"b\": 0.9, \"extra\": 0.1}}",
        );
        assert_eq!(run(&b, &m), Ok(true));
    }

    #[test]
    fn gate_fails_below_floor_and_on_missing_ratio() {
        let b = write_tmp(
            "perf_gate_base_fail.json",
            "{\"floors\": {\"a\": 1.5, \"gone\": 1.0}}",
        );
        let m = write_tmp("perf_gate_meas_fail.json", "{\"ratios\": {\"a\": 1.4}}");
        assert_eq!(run(&b, &m), Ok(false));
    }

    #[test]
    fn gate_rejects_malformed_inputs() {
        let empty = write_tmp("perf_gate_empty.json", "{\"floors\": {}}");
        let m = write_tmp("perf_gate_meas_any.json", "{\"ratios\": {\"a\": 1.0}}");
        assert!(run(&empty, &m).is_err());
        let noobj = write_tmp("perf_gate_noobj.json", "{\"floors\": 3}");
        assert!(run(&noobj, &m).is_err());
        assert!(run("/nonexistent/base.json", &m).is_err());
    }
}
