//! Perf-regression gate — diffs measured speedup ratios against
//! committed floors.
//!
//! ```text
//! perf_gate [<baseline.json>] [<measured.json>]
//! ```
//!
//! The baseline (default `BENCH_baseline.json`, committed at the repo
//! root) carries a `floors` object mapping ratio names to the minimum
//! acceptable tick-over-event speedup, plus a `meta.config_fingerprint`
//! pinning the engine configuration the floors were blessed against.
//! The measured file (default `BENCH_sim.json`, written by the
//! `sim_throughput` bench) carries the machine-readable `ratios`
//! member. Every floor must have a measured ratio at or above it; a
//! missing ratio is itself a failure, so silently dropping a benchmark
//! from the suite cannot pass the gate.
//!
//! The gate never stops at the first problem: every failing ratio is
//! collected and the full list reported at the end, together with a
//! re-bless hint when the baseline itself is the thing that is out of
//! date (missing file, or a config fingerprint that no longer matches
//! the measured engine).
//!
//! Floors are deliberately conservative relative to typical measured
//! ratios: shared CI runners are noisy, and the gate exists to catch
//! structural regressions (an engine suddenly slower than the reference
//! stepper, the memo losing its co-run advantage), not single-digit
//! percentage drift.

use obs::json::{parse, Json};
use std::process::ExitCode;

/// Loads a JSON document and extracts one named object member as
/// `(key, f64)` pairs, in file order.
fn load_member(path: &str, member: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let obj = doc
        .get(member)
        .ok_or_else(|| format!("{path}: missing \"{member}\" object"))?;
    let Json::Obj(pairs) = obj else {
        return Err(format!("{path}: \"{member}\" is not an object"));
    };
    pairs
        .iter()
        .map(|(k, v)| {
            v.as_f64()
                .map(|f| (k.clone(), f))
                .ok_or_else(|| format!("{path}: {member}.{k} is not a number"))
        })
        .collect()
}

/// Reads `meta.config_fingerprint` if the document carries one.
fn load_fingerprint(path: &str) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = parse(&text).ok()?;
    doc.get("meta")?
        .get("config_fingerprint")?
        .as_str()
        .map(String::from)
}

const REBLESS_HINT: &str = "hint: if this change is intentional, re-bless BENCH_baseline.json: \
     copy the new ratios from BENCH_sim.json into \"floors\" (backed off for runner noise) and \
     update meta.config_fingerprint to the measured value";

fn run(baseline_path: &str, measured_path: &str) -> Result<bool, String> {
    let floors = match load_member(baseline_path, "floors") {
        Ok(f) => f,
        Err(e) => {
            return Err(format!(
                "{e}\nhint: no usable baseline — create {baseline_path} with a \"floors\" object \
                 (seed it from the ratios in {measured_path}) and a meta.config_fingerprint, \
                 then commit it (\"re-bless\")"
            ));
        }
    };
    if floors.is_empty() {
        return Err(format!("{baseline_path}: \"floors\" object is empty"));
    }
    let ratios = load_member(measured_path, "ratios")?;

    println!("perf gate: {measured_path} vs floors in {baseline_path}");
    println!("{:<32} {:>9} {:>9}  verdict", "ratio", "floor", "measured");
    let mut failures: Vec<String> = Vec::new();
    for (name, floor) in &floors {
        match ratios.iter().find(|(k, _)| k == name) {
            Some((_, measured)) if measured >= floor => {
                println!("{name:<32} {floor:>9.3} {measured:>9.3}  ok");
            }
            Some((_, measured)) => {
                println!("{name:<32} {floor:>9.3} {measured:>9.3}  BELOW FLOOR");
                failures.push(format!(
                    "{name} (floor {floor:.3}, measured {measured:.3}, delta {:+.3})",
                    measured - floor
                ));
            }
            None => {
                println!("{name:<32} {floor:>9.3} {:>9}  MISSING", "-");
                failures.push(format!("{name} (missing from {measured_path})"));
            }
        }
    }

    // Staleness check: floors blessed against one engine configuration
    // are meaningless against another.
    let mut stale = false;
    match (
        load_fingerprint(baseline_path),
        load_fingerprint(measured_path),
    ) {
        (Some(base_fp), Some(meas_fp)) if base_fp != meas_fp => {
            stale = true;
            failures.push(format!(
                "config fingerprint mismatch: baseline blessed against {base_fp}, measured engine \
                 is {meas_fp}"
            ));
        }
        (None, Some(meas_fp)) => {
            // Old-format baseline: not a failure, but say how to fix.
            println!(
                "note: {baseline_path} carries no meta.config_fingerprint — add \
                 \"meta\": {{\"config_fingerprint\": \"{meas_fp}\"}} on the next re-bless"
            );
        }
        _ => {}
    }

    if failures.is_empty() {
        Ok(true)
    } else {
        eprintln!(
            "perf gate: {} failure(s):\n  - {}",
            failures.len(),
            failures.join("\n  - ")
        );
        if stale {
            eprintln!(
                "hint: the baseline fingerprint is stale — the engine configuration changed since \
                 the floors were blessed; re-bless BENCH_baseline.json against the new \
                 BENCH_sim.json if the change is intentional"
            );
        } else {
            eprintln!("{REBLESS_HINT}");
        }
        Ok(false)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline = args.first().map_or("BENCH_baseline.json", String::as_str);
    let measured = args.get(1).map_or("BENCH_sim.json", String::as_str);
    match run(baseline, measured) {
        Ok(true) => {
            println!("perf gate: all floors hold");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("perf gate: FAILED — see the failure list above");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("perf gate: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tmp(name: &str, body: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, body).expect("write tmp");
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn gate_passes_when_ratios_meet_floors() {
        let b = write_tmp(
            "perf_gate_base_ok.json",
            "{\"floors\": {\"a\": 1.5, \"b\": 0.9}}",
        );
        let m = write_tmp(
            "perf_gate_meas_ok.json",
            "{\"ratios\": {\"a\": 2.0, \"b\": 0.9, \"extra\": 0.1}}",
        );
        assert_eq!(run(&b, &m), Ok(true));
    }

    #[test]
    fn gate_fails_below_floor_and_on_missing_ratio() {
        let b = write_tmp(
            "perf_gate_base_fail.json",
            "{\"floors\": {\"a\": 1.5, \"gone\": 1.0}}",
        );
        let m = write_tmp("perf_gate_meas_fail.json", "{\"ratios\": {\"a\": 1.4}}");
        assert_eq!(run(&b, &m), Ok(false));
    }

    #[test]
    fn gate_rejects_malformed_inputs() {
        let empty = write_tmp("perf_gate_empty.json", "{\"floors\": {}}");
        let m = write_tmp("perf_gate_meas_any.json", "{\"ratios\": {\"a\": 1.0}}");
        assert!(run(&empty, &m).is_err());
        let noobj = write_tmp("perf_gate_noobj.json", "{\"floors\": 3}");
        assert!(run(&noobj, &m).is_err());
        assert!(run("/nonexistent/base.json", &m).is_err());
    }

    #[test]
    fn missing_baseline_error_carries_rebless_hint() {
        let m = write_tmp("perf_gate_meas_hint.json", "{\"ratios\": {\"a\": 1.0}}");
        let err = run("/nonexistent/base.json", &m).unwrap_err();
        assert!(err.contains("re-bless"), "{err}");
    }

    #[test]
    fn matching_fingerprints_pass_and_mismatch_fails() {
        let b = write_tmp(
            "perf_gate_base_fp.json",
            "{\"meta\": {\"config_fingerprint\": \"aaaa\"}, \"floors\": {\"a\": 1.0}}",
        );
        let m_ok = write_tmp(
            "perf_gate_meas_fp_ok.json",
            "{\"meta\": {\"config_fingerprint\": \"aaaa\"}, \"ratios\": {\"a\": 2.0}}",
        );
        assert_eq!(run(&b, &m_ok), Ok(true));
        let m_stale = write_tmp(
            "perf_gate_meas_fp_stale.json",
            "{\"meta\": {\"config_fingerprint\": \"bbbb\"}, \"ratios\": {\"a\": 2.0}}",
        );
        assert_eq!(run(&b, &m_stale), Ok(false));
    }

    #[test]
    fn all_failures_are_collected_not_just_the_first() {
        let b = write_tmp(
            "perf_gate_base_multi.json",
            "{\"floors\": {\"a\": 1.5, \"b\": 2.0, \"c\": 1.0}}",
        );
        let m = write_tmp(
            "perf_gate_meas_multi.json",
            "{\"ratios\": {\"a\": 1.0, \"c\": 0.5}}",
        );
        // a below floor, b missing, c below floor — all three must fail
        // (exercised via the boolean; the list itself goes to stderr).
        assert_eq!(run(&b, &m), Ok(false));
    }
}
