//! Tick vs event timing-kernel throughput on the Table 2 workload mix.
//!
//! Each workload is one of the calibration campaign's micro probes —
//! the same SRI-target mix that reproduces Table 2 — run to completion
//! on both engines, the event kernel twice: with basic-block
//! memoization (the default) and without. The stall-heavy probes
//! (DFLASH/LMU word streams, dirty stores) are where plain
//! fast-forwarding shines — almost every cycle sits inside a
//! multi-cycle SRI transaction the kernel can skip — while the
//! compute/cache-hit-dense probes (the PFLASH code stream, the co-run's
//! control loop) are where the block memo earns its keep by replaying
//! whole stall-free blocks in one delta. All three configurations are
//! bit-identical (asserted here per workload), so the only difference
//! reported is wall-clock per simulated cycle.
//!
//! Writes `BENCH_sim.json` with a machine-readable `ratios` member
//! (tick-median over event-median per probe); `ci.sh perf` diffs those
//! ratios against the committed floors in `BENCH_baseline.json`.

use contention_bench::harness::{Harness, MetaEnvelope};
use std::hint::black_box;
use std::path::PathBuf;
use tc27x_sim::{CoreId, Engine, Region, SimConfig, System, TaskSpec};
use workloads::micro;

/// One engine configuration under measurement.
#[derive(Clone, Copy)]
struct Variant {
    /// Benchmark-name suffix (`tick`, `event`, `event_nomemo`).
    suffix: &'static str,
    engine: Engine,
    block_memo: bool,
}

const VARIANTS: [Variant; 3] = [
    Variant {
        suffix: "tick",
        engine: Engine::Tick,
        block_memo: true,
    },
    Variant {
        suffix: "event",
        engine: Engine::Event,
        block_memo: true,
    },
    Variant {
        suffix: "event_nomemo",
        engine: Engine::Event,
        block_memo: false,
    },
];

fn config(v: Variant) -> SimConfig {
    SimConfig::tc277_reference()
        .with_engine(v.engine)
        .with_block_memo(v.block_memo)
}

/// Runs `spec` in isolation on core 1 under `v`, returning CCNT.
fn run_isolated(spec: &TaskSpec, v: Variant) -> u64 {
    let mut sys = System::with_config(config(v));
    sys.load(CoreId(1), spec).unwrap();
    sys.run().unwrap().counters(CoreId(1)).ccnt
}

/// Runs the co-run pair under `v`, returning the app core's CCNT.
fn run_corun(app: &TaskSpec, load: &TaskSpec, v: Variant) -> u64 {
    let mut sys = System::with_config(config(v));
    sys.load(CoreId(1), app).unwrap();
    sys.load(CoreId(2), load).unwrap();
    sys.run_until(CoreId(1)).unwrap().counters(CoreId(1)).ccnt
}

/// Benches every variant of one workload and records the tick-relative
/// speedup ratios (`name` for the memoized event kernel, `name_nomemo`
/// for the memo-free one).
fn bench_variants(h: &mut Harness, name: &str, mut run: impl FnMut(Variant) -> u64) {
    let mut medians = [1u128; VARIANTS.len()];
    for (slot, v) in VARIANTS.into_iter().enumerate() {
        h.bench(&format!("{name}_{}", v.suffix), || black_box(run(v)));
        medians[slot] = h.results().last().map(|r| r.median_ns.max(1)).unwrap_or(1);
    }
    h.ratio(name, medians[0] as f64 / medians[1] as f64);
    h.ratio(
        &format!("{name}_nomemo"),
        medians[0] as f64 / medians[2] as f64,
    );
}

fn main() {
    // `finish()` writes BENCH_<group>.json into the working directory;
    // anchor it at the repo root regardless of where cargo was invoked.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    if let Err(e) = std::env::set_current_dir(&root) {
        eprintln!("warning: could not enter {}: {e}", root.display());
    }

    let mut h = Harness::new("sim");
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Each probe runs on both kernels, single-threaded.
    h.set_envelope(MetaEnvelope::new(&args, "tick+event", 1));
    h.sample_size(5);

    // The Table 2 probe mix, one per SRI target class. The first two
    // are stall-heavy (43-cycle DFLASH and 11-cycle LMU services), the
    // code stream is the PFLASH line-fetch pattern, and the dirty
    // stores exercise the LMU write-back path.
    let probes: &[(&str, TaskSpec)] = &[
        (
            "data_words_dflash",
            micro::data_words(CoreId(1), Region::Dflash, 400, false),
        ),
        (
            "data_words_lmu",
            micro::data_words(CoreId(1), Region::Lmu, 400, false),
        ),
        ("code_stream_pf0", micro::code_stream(Region::Pflash0, 320)),
        ("dirty_stores_lmu", micro::dirty_stores(CoreId(1), 1000)),
    ];

    for (name, spec) in probes {
        let cycles = run_isolated(spec, VARIANTS[1]);
        for v in [VARIANTS[0], VARIANTS[2]] {
            assert_eq!(
                cycles,
                run_isolated(spec, v),
                "{name}: all engine configurations must be bit-identical"
            );
        }
        h.throughput_elements(cycles);
        bench_variants(&mut h, name, |v| run_isolated(spec, v));
    }

    // One contended case: the control-loop app against a high contender,
    // where SRI queueing keeps the event queue busiest.
    let app = workloads::control_loop(tc27x_sim::DeploymentScenario::Scenario1, CoreId(1), 42);
    let load = workloads::contender(
        tc27x_sim::DeploymentScenario::Scenario1,
        workloads::LoadLevel::High,
        CoreId(2),
        7,
    );
    let cycles = run_corun(&app, &load, VARIANTS[1]);
    for v in [VARIANTS[0], VARIANTS[2]] {
        assert_eq!(
            cycles,
            run_corun(&app, &load, v),
            "corun: all engine configurations must be bit-identical"
        );
    }
    h.throughput_elements(cycles);
    bench_variants(&mut h, "corun_hload", |v| run_corun(&app, &load, v));

    for (name, speedup) in h.ratios() {
        println!("speedup/{name:<32} event is {speedup:.2}x the tick stepper");
    }

    h.finish();
}
