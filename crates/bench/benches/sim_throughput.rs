//! Tick vs event timing-kernel throughput on the Table 2 workload mix.
//!
//! Each workload is one of the calibration campaign's micro probes —
//! the same SRI-target mix that reproduces Table 2 — run to completion
//! on both engines. The stall-heavy probes (DFLASH/LMU word streams,
//! dirty stores) are where the event kernel should shine: almost every
//! cycle sits inside a multi-cycle SRI transaction the kernel can skip.
//! Both engines are bit-identical (asserted here per workload), so the
//! only difference reported is wall-clock per simulated cycle.
//!
//! Writes `BENCH_sim.json`; ci.sh runs this as a non-gating report.

use contention_bench::harness::{Harness, MetaEnvelope};
use std::hint::black_box;
use std::path::PathBuf;
use tc27x_sim::{CoreId, Engine, Region, SimConfig, System, TaskSpec};
use workloads::micro;

/// Runs `spec` in isolation on core 1 under `engine`, returning CCNT.
fn run_isolated(spec: &TaskSpec, engine: Engine) -> u64 {
    let cfg = SimConfig::tc277_reference().with_engine(engine);
    let mut sys = System::with_config(cfg);
    sys.load(CoreId(1), spec).unwrap();
    sys.run().unwrap().counters(CoreId(1)).ccnt
}

/// Runs the co-run pair under `engine`, returning the app core's CCNT.
fn run_corun(app: &TaskSpec, load: &TaskSpec, engine: Engine) -> u64 {
    let cfg = SimConfig::tc277_reference().with_engine(engine);
    let mut sys = System::with_config(cfg);
    sys.load(CoreId(1), app).unwrap();
    sys.load(CoreId(2), load).unwrap();
    sys.run_until(CoreId(1)).unwrap().counters(CoreId(1)).ccnt
}

fn main() {
    // `finish()` writes BENCH_<group>.json into the working directory;
    // anchor it at the repo root regardless of where cargo was invoked.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    if let Err(e) = std::env::set_current_dir(&root) {
        eprintln!("warning: could not enter {}: {e}", root.display());
    }

    let mut h = Harness::new("sim");
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Each probe runs on both kernels, single-threaded.
    h.set_envelope(MetaEnvelope::new(&args, "tick+event", 1));
    h.sample_size(5);

    // The Table 2 probe mix, one per SRI target class. The first two
    // are stall-heavy (43-cycle DFLASH and 11-cycle LMU services), the
    // code stream is the PFLASH line-fetch pattern, and the dirty
    // stores exercise the LMU write-back path.
    let probes: &[(&str, TaskSpec)] = &[
        (
            "data_words_dflash",
            micro::data_words(CoreId(1), Region::Dflash, 400, false),
        ),
        (
            "data_words_lmu",
            micro::data_words(CoreId(1), Region::Lmu, 400, false),
        ),
        ("code_stream_pf0", micro::code_stream(Region::Pflash0, 320)),
        ("dirty_stores_lmu", micro::dirty_stores(CoreId(1), 1000)),
    ];

    let mut speedups: Vec<(&str, f64)> = Vec::new();
    for (name, spec) in probes {
        let cycles = run_isolated(spec, Engine::Event);
        assert_eq!(
            cycles,
            run_isolated(spec, Engine::Tick),
            "{name}: engines must be bit-identical"
        );
        h.throughput_elements(cycles);
        let mut medians = [0u128; 2];
        for (slot, engine) in [Engine::Tick, Engine::Event].into_iter().enumerate() {
            h.bench(&format!("{name}_{engine}"), || {
                black_box(run_isolated(spec, engine))
            });
            medians[slot] = h.results().last().map(|r| r.median_ns).unwrap_or(1);
        }
        speedups.push((name, medians[0] as f64 / medians[1].max(1) as f64));
    }

    // One contended case: the control-loop app against a high contender,
    // where SRI queueing keeps the event queue busiest.
    let app = workloads::control_loop(tc27x_sim::DeploymentScenario::Scenario1, CoreId(1), 42);
    let load = workloads::contender(
        tc27x_sim::DeploymentScenario::Scenario1,
        workloads::LoadLevel::High,
        CoreId(2),
        7,
    );
    let cycles = run_corun(&app, &load, Engine::Event);
    assert_eq!(
        cycles,
        run_corun(&app, &load, Engine::Tick),
        "corun: engines must be bit-identical"
    );
    h.throughput_elements(cycles);
    let mut medians = [0u128; 2];
    for (slot, engine) in [Engine::Tick, Engine::Event].into_iter().enumerate() {
        h.bench(&format!("corun_hload_{engine}"), || {
            black_box(run_corun(&app, &load, engine))
        });
        medians[slot] = h.results().last().map(|r| r.median_ns).unwrap_or(1);
    }
    speedups.push(("corun_hload", medians[0] as f64 / medians[1].max(1) as f64));

    for (name, speedup) in &speedups {
        println!("speedup/{name:<24} event is {speedup:.2}x the tick stepper");
    }

    h.finish();
}
