//! Design-space campaign benchmark.
//!
//! Measures the per-point cost of the `dse` pipeline — the quantity
//! that decides how large a campaign one can afford:
//!
//! * `taskset_generation` — one seeded UUniFast-style task-set draw;
//! * `point_evaluation` — one full design point: task-set draw plus
//!   response-time analysis under the ideal, fTC and ILP inflations;
//! * `shard_points_per_sec` — end-to-end shard throughput including
//!   the write-ahead journal (fsync per point), measured by running a
//!   real shard to completion in-process.
//!
//! Writes `BENCH_dse.json`. Model-ratio derivation (two isolation
//! simulations) happens once up front, exactly as `dse-worker` does.

use contention_bench::harness::{Harness, MetaEnvelope};
use dse::{evaluate_point, model_ratios, run_shard, DseConfig};
use std::path::PathBuf;
use std::time::Instant;

fn scratch(tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("dse-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn main() {
    // `finish()` writes BENCH_<group>.json into the working directory;
    // anchor it at the repo root regardless of where cargo was invoked.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    if let Err(e) = std::env::set_current_dir(&root) {
        eprintln!("warning: could not enter {}: {e}", root.display());
    }

    let args: Vec<String> = std::env::args().collect();
    let mut h = Harness::new("dse");
    h.set_envelope(MetaEnvelope::new(&args, "dse", 1));

    let cfg = DseConfig::default();
    let ratios = model_ratios(cfg.scenario, cfg.seed).expect("model ratios");

    h.sample_size(50).bench("taskset_generation", || {
        let point = cfg.points().next().expect("non-empty space");
        dse::gen::task_set(
            point.taskset_seed(&cfg),
            cfg.tasks,
            cfg.util_ppm(point.u_idx),
        )
    });

    let points: Vec<_> = cfg.points().collect();
    let mut cursor = 0usize;
    h.sample_size(50).bench("point_evaluation", || {
        let point = points[cursor % points.len()];
        cursor += 1;
        evaluate_point(&cfg, point, &ratios)
    });

    // End-to-end shard throughput, journal fsyncs included.
    let dir = scratch("shard");
    let shard_points = cfg.shard_points(1, 0).len();
    let t0 = Instant::now();
    let stats = run_shard(&cfg, 1, 0, &dir, &ratios, 0, None, 0).expect("shard run");
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(stats.computed, shard_points);
    let pps = shard_points as f64 / elapsed.max(1e-9);
    h.ratio("shard_points_per_sec", pps);
    println!("dse campaign: {shard_points} point(s) journaled in {elapsed:.3}s — {pps:.0} pts/s");
    let _ = std::fs::remove_dir_all(&dir);

    h.finish();
}
