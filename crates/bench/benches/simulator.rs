//! Criterion benches for the TC27x simulator: cycles simulated per
//! second on the evaluation workloads.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tc27x_sim::{CoreId, DeploymentScenario, System};
use workloads::{contender, control_loop, LoadLevel};

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);

    // Measure once to learn the cycle count, then report throughput.
    let core = CoreId(1);
    let app = control_loop(DeploymentScenario::Scenario1, core, 42);
    let cycles = {
        let mut sys = System::tc277();
        sys.load(core, &app).unwrap();
        sys.run().unwrap().counters(core).ccnt
    };
    g.throughput(Throughput::Elements(cycles));
    g.bench_function("isolation_control_loop_sc1", |b| {
        b.iter(|| {
            let mut sys = System::tc277();
            sys.load(core, &app).unwrap();
            black_box(sys.run().unwrap().counters(core).ccnt)
        })
    });

    let load = contender(DeploymentScenario::Scenario1, LoadLevel::High, CoreId(2), 7);
    g.bench_function("corun_app_vs_hload_sc1", |b| {
        b.iter(|| {
            let mut sys = System::tc277();
            sys.load(core, &app).unwrap();
            sys.load(CoreId(2), &load).unwrap();
            black_box(sys.run_until(core).unwrap().counters(core).ccnt)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
