//! Benches for the TC27x simulator: cycles simulated per second on the
//! evaluation workloads.

use contention_bench::harness::Harness;
use std::hint::black_box;
use tc27x_sim::{CoreId, DeploymentScenario, System};
use workloads::{contender, control_loop, LoadLevel};

fn main() {
    let mut h = Harness::new("simulator");
    h.sample_size(10);

    // Measure once to learn the cycle count, then report throughput.
    let core = CoreId(1);
    let app = control_loop(DeploymentScenario::Scenario1, core, 42);
    let cycles = {
        let mut sys = System::tc277();
        sys.load(core, &app).unwrap();
        sys.run().unwrap().counters(core).ccnt
    };
    h.throughput_elements(cycles);
    h.bench("isolation_control_loop_sc1", || {
        let mut sys = System::tc277();
        sys.load(core, &app).unwrap();
        black_box(sys.run().unwrap().counters(core).ccnt)
    });

    let load = contender(DeploymentScenario::Scenario1, LoadLevel::High, CoreId(2), 7);
    h.bench("corun_app_vs_hload_sc1", || {
        let mut sys = System::tc277();
        sys.load(core, &app).unwrap();
        sys.load(CoreId(2), &load).unwrap();
        black_box(sys.run_until(core).unwrap().counters(core).ccnt)
    });

    h.finish();
}
