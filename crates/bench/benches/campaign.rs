//! Benches for the crash-safe campaign layer: what the write-ahead
//! journal costs on top of a plain engine batch, how fast a finished
//! journal resumes (replay, zero simulation), and the raw fsync'd
//! append throughput. Writes `BENCH_campaign.json` at the repo root.

use contention_bench::harness::{Harness, MetaEnvelope};
use mbta::{BatchRunner, CampaignConfig, CampaignRunner, ExecEngine, Journal, SimJob, SimOutcome};
use std::hint::black_box;
use std::path::PathBuf;
use tc27x_sim::{CoreId, DeploymentScenario};
use workloads::{contender, control_loop, LoadLevel};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mbta-campaign-bench-{}-{name}", std::process::id()));
    p
}

/// A Figure-4-panel-sized batch: one app isolation plus the three
/// contender levels, each with its isolation and co-run.
fn panel_batch() -> Vec<SimJob> {
    let (a, b) = (CoreId(1), CoreId(2));
    let app = control_loop(DeploymentScenario::Scenario1, a, 42);
    let mut jobs = vec![SimJob::Isolation {
        spec: app.clone(),
        core: a,
    }];
    for level in LoadLevel::all() {
        let load = contender(DeploymentScenario::Scenario1, level, b, 7);
        jobs.push(SimJob::Isolation {
            spec: load.clone(),
            core: b,
        });
        jobs.push(SimJob::Corun {
            app: app.clone(),
            app_core: a,
            load,
            load_core: b,
        });
    }
    jobs
}

fn main() {
    // `finish()` writes BENCH_<group>.json into the working directory;
    // anchor it at the repo root regardless of where cargo was invoked.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    if let Err(e) = std::env::set_current_dir(&root) {
        eprintln!("warning: could not enter {}: {e}", root.display());
    }

    let mut h = Harness::new("campaign");
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Every engine below is ExecEngine::new(2) on the default kernel.
    h.set_envelope(MetaEnvelope::new(&args, "event", 2));
    h.sample_size(5);
    let batch = panel_batch();

    // Baseline: the same batch on a bare engine, simulated from scratch
    // every call (fresh engine, cold memo cache).
    h.bench("panel_batch_no_journal", || {
        let engine = ExecEngine::new(2);
        black_box(engine.run_batch_detailed(&batch))
    });

    // The tentpole overhead number: identical work, but every outcome
    // is framed, checksummed, written and fsync'd to the journal.
    let journaled_path = tmp("overhead");
    h.bench("panel_batch_journaled", || {
        let engine = ExecEngine::new(2);
        let campaign =
            CampaignRunner::journaled(&engine, CampaignConfig::default(), &journaled_path)
                .expect("create journal");
        black_box(campaign.run_batch_detailed(&batch))
    });

    // Resume wall-time: recover a finished journal and replay the whole
    // batch without a single simulation.
    let finished_path = tmp("finished");
    {
        let engine = ExecEngine::new(2);
        let campaign =
            CampaignRunner::journaled(&engine, CampaignConfig::default(), &finished_path)
                .expect("create journal");
        campaign.run_batch_detailed(&batch);
    }
    h.bench("panel_batch_resume_replay", || {
        let engine = ExecEngine::new(2);
        let (campaign, _) =
            CampaignRunner::resumed(&engine, CampaignConfig::default(), &finished_path)
                .expect("resume journal");
        black_box(campaign.run_batch_detailed(&batch))
    });

    // Raw journal throughput: 64 fsync'd co-run records per call.
    let append_path = tmp("append");
    h.throughput_elements(64)
        .bench("journal_append_64_records", || {
            let journal = Journal::create(&append_path, 0xfeed).expect("create journal");
            for key in 0..64u64 {
                journal
                    .append(key, 0, &Ok(SimOutcome::Corun(key * 1_000)))
                    .expect("append record");
            }
            black_box(())
        });

    h.finish();
    std::fs::remove_file(&journaled_path).ok();
    std::fs::remove_file(&finished_path).ok();
    std::fs::remove_file(&append_path).ok();
}
