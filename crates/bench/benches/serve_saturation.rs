//! `contention-serve` saturation benchmark.
//!
//! Starts an in-process daemon on a Unix socket, warms it with the
//! distinct semantic queries, then measures:
//!
//! * `serve_cached_roundtrip` — one request/response round trip served
//!   from the response cache (the steady-state serving cost);
//! * `sustained_qps` — queries per second sustained by several client
//!   threads hammering cached queries concurrently;
//! * `shed_fraction_capped` — the fraction of a pipelined burst shed
//!   with an explicit `overloaded` under a deliberately tiny queue cap
//!   (backpressure must engage, not buffer without bound).
//!
//! Writes `BENCH_serve.json`. The qps number is hardware-dependent and
//! deliberately not gated; the shed fraction demonstrates admission
//! control working and is asserted non-zero here (a benchmark that
//! cannot saturate a cap-1 queue is measuring the wrong thing).

use contention_bench::harness::{Harness, MetaEnvelope};
use serve::client::{Addr, Client};
use serve::query::QueryOptions;
use serve::{QueryKind, Request, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tc27x_sim::DeploymentScenario;
use workloads::LoadLevel;

fn scratch(tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("serve-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(dir: &std::path::Path, workers: usize, queue_cap: usize) -> (Server, Addr) {
    let sock = dir.join("bench.sock");
    let server = Server::start(
        Arc::new(mbta::ExecEngine::new(workers)),
        ServerConfig {
            unix_socket: Some(sock.clone()),
            tcp_addr: None,
            state_dir: dir.join("state"),
            workers,
            queue_cap,
            global_queue_cap: queue_cap.max(64),
            retry_after_ms: 25,
            io_timeout_ms: 1_000,
            query: QueryOptions::default(),
        },
    )
    .expect("daemon must start");
    (server, Addr::Unix(sock))
}

fn bound(i: usize, level: LoadLevel, budget: Option<u64>) -> Request {
    Request {
        id: format!("q{i}"),
        tenant: format!("bench-{}", i % 4),
        kind: QueryKind::Bound {
            scenario: DeploymentScenario::LowTraffic,
            level,
        },
        budget,
        strict: false,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workers = 2usize;
    let mut h = Harness::new("serve");
    h.set_envelope(MetaEnvelope::new(&args, "serve", workers as u64));

    let dir = scratch("main");
    let (server, addr) = start(&dir, workers, 256);

    // Warm: compute every distinct body once (cold path measured by
    // the sim benches already; serving measures the protocol).
    let warm = [
        bound(0, LoadLevel::Low, None),
        bound(1, LoadLevel::Medium, None),
        bound(2, LoadLevel::High, None),
    ];
    let mut client = Client::connect(&addr, Duration::from_secs(300)).expect("connect");
    for req in &warm {
        let resp = client.request(req).expect("warm response");
        assert!(resp.contains("\"status\":\"ok\""), "{resp}");
    }

    // Steady-state round trip, served from the response cache.
    let probe = bound(0, LoadLevel::Low, None);
    h.sample_size(60).bench("serve_cached_roundtrip", || {
        client.request(&probe).expect("cached response")
    });

    // Sustained throughput: several client threads, cached queries.
    const THREADS: usize = 4;
    const PER_THREAD: usize = 100;
    let t0 = Instant::now();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, Duration::from_secs(300)).expect("connect");
                let levels = [LoadLevel::Low, LoadLevel::Medium, LoadLevel::High];
                for i in 0..PER_THREAD {
                    let req = bound(t * PER_THREAD + i, levels[i % 3], None);
                    let resp = c.request(&req).expect("response");
                    assert!(resp.contains("\"status\":\"ok\""), "{resp}");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let qps = (THREADS * PER_THREAD) as f64 / elapsed.max(1e-9);
    h.ratio("sustained_qps", qps);
    println!(
        "serve saturation: {} queries over {THREADS} thread(s) in {elapsed:.3}s — {qps:.0} q/s",
        THREADS * PER_THREAD
    );
    server.trigger_shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);

    // Backpressure: cap-1 queue, one worker, pipelined distinct
    // requests — some must shed.
    let dir = scratch("shed");
    let (server, addr) = start(&dir, 1, 1);
    let mut c = Client::connect(&addr, Duration::from_secs(300)).expect("connect");
    let burst: Vec<Request> = (0..8)
        .map(|i| bound(i, LoadLevel::Low, Some(1_000 + i as u64)))
        .collect();
    for req in &burst {
        c.send(req).expect("send");
    }
    let mut shed = 0usize;
    for _ in 0..burst.len() {
        let resp = c.recv().expect("response").expect("body");
        if resp.contains("\"status\":\"overloaded\"") {
            shed += 1;
        }
    }
    let fraction = shed as f64 / burst.len() as f64;
    assert!(shed > 0, "a cap-1 queue under an 8-burst must shed");
    h.ratio("shed_fraction_capped", fraction);
    println!(
        "serve saturation: {shed}/{} burst request(s) shed under cap-1 ({fraction:.2})",
        burst.len()
    );
    server.trigger_shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);

    h.finish();
}
