//! Benches for model evaluation (experiment E4): how fast the fTC
//! closed form and the ILP-PTAC solve are on Figure-4 profiles.

use contention::{ContentionModel, FtcModel, IlpPtacModel, Platform, ScenarioConstraints};
use contention_bench::harness::Harness;
use std::hint::black_box;
use tc27x_sim::{CoreId, DeploymentScenario};
use workloads::{contender, control_loop, LoadLevel};

fn main() {
    let platform = Platform::tc277_reference();
    let app = mbta::isolation_profile(
        &control_loop(DeploymentScenario::Scenario1, CoreId(1), 42),
        CoreId(1),
    )
    .unwrap();
    let load = mbta::isolation_profile(
        &contender(DeploymentScenario::Scenario1, LoadLevel::High, CoreId(2), 7),
        CoreId(2),
    )
    .unwrap();

    let mut h = Harness::new("models");
    h.sample_size(30);

    let ftc = FtcModel::new(&platform);
    h.bench("ftc_closed_form", || {
        black_box(ftc.pairwise_bound(&app, &load).unwrap().delta_cycles)
    });
    let ilp = IlpPtacModel::new(&platform, ScenarioConstraints::scenario1());
    h.bench("ilp_ptac_scenario1", || {
        black_box(ilp.pairwise_bound(&app, &load).unwrap().delta_cycles)
    });
    let ilp2 = IlpPtacModel::new(&platform, ScenarioConstraints::scenario2());
    h.bench("ilp_ptac_scenario2", || {
        black_box(ilp2.pairwise_bound(&app, &load).unwrap().delta_cycles)
    });

    h.finish();
}
