//! Benches for the exact ILP solver substrate.

use contention_bench::harness::Harness;
use ilp::{LinExpr, Problem, Rational};
use std::hint::black_box;

fn knapsack_problem(items: usize) -> Problem {
    let mut p = Problem::maximize();
    let mut obj = LinExpr::new();
    let mut cons = LinExpr::new();
    for i in 0..items {
        let v = p.add_var(format!("x{i}")).integer().bounds(0, 1).build();
        obj += v * (3 + (7 * i as i128) % 11);
        cons += v * (2 + (5 * i as i128) % 9);
    }
    p.set_objective(obj);
    p.add_le(cons, 4 * items as i128 / 2);
    p
}

fn ptac_shaped_problem() -> Problem {
    // The Scenario-1 ILP-PTAC structure with realistic magnitudes.
    let mut p = Problem::maximize();
    let pm_a = 18_136i128;
    let pm_b = 18_136i128;
    let (ds_a, ds_b) = (123_840i128, 123_840i128);
    let na0 = p.add_var("na_pf0_co").integer().bounds(0, pm_a).build();
    let na1 = p.add_var("na_pf1_co").integer().bounds(0, pm_a).build();
    let nad = p
        .add_var("na_lmu_da")
        .integer()
        .bounds(0, ds_a / 10)
        .build();
    let nb0 = p.add_var("nb_pf0_co").integer().bounds(0, pm_b).build();
    let nb1 = p.add_var("nb_pf1_co").integer().bounds(0, pm_b).build();
    let nbd = p
        .add_var("nb_lmu_da")
        .integer()
        .bounds(0, ds_b / 10)
        .build();
    let i0 = p.add_var("nba_pf0_co").integer().bounds(0, pm_a).build();
    let i1 = p.add_var("nba_pf1_co").integer().bounds(0, pm_a).build();
    let id = p
        .add_var("nba_lmu_da")
        .integer()
        .bounds(0, ds_a / 10)
        .build();
    p.add_eq(na0 + na1, pm_a);
    p.add_eq(nb0 + nb1, pm_b);
    p.add_le(nad * 10, ds_a);
    p.add_le(nbd * 10, ds_b);
    p.add_le(i0, na0);
    p.add_le(i0, nb0);
    p.add_le(i1, na1);
    p.add_le(i1, nb1);
    p.add_le(id, nad);
    p.add_le(id, nbd);
    p.set_objective(i0 * 16 + i1 * 16 + id * 11);
    p
}

fn main() {
    let mut h = Harness::new("ilp");
    h.sample_size(30);

    let p = knapsack_problem(10);
    h.bench("knapsack_10_binary", || {
        black_box(&p).solve().unwrap().objective()
    });

    let p = ptac_shaped_problem();
    h.bench("ptac_shaped_exact", || {
        black_box(&p).solve().unwrap().objective()
    });
    h.bench("ptac_shaped_lp_relaxation", || {
        black_box(&p).solve_relaxation().unwrap().objective()
    });

    h.bench("rational_pivot_arithmetic", || {
        let mut acc = Rational::ZERO;
        for i in 1..200i128 {
            acc += Rational::new(i, i + 1) * Rational::new(i + 2, i + 3);
        }
        black_box(acc)
    });

    h.finish();
}
