//! Benches for the ILP-PTAC ablations (experiment E7): cost of each
//! formulation variant.

use contention::{ContentionModel, IlpPtacModel, IlpPtacOptions, Platform, ScenarioConstraints};
use contention_bench::harness::Harness;
use std::hint::black_box;
use tc27x_sim::{CoreId, DeploymentScenario};
use workloads::{contender, control_loop, LoadLevel};

fn main() {
    let platform = Platform::tc277_reference();
    let app = mbta::isolation_profile(
        &control_loop(DeploymentScenario::Scenario1, CoreId(1), 42),
        CoreId(1),
    )
    .unwrap();
    let load = mbta::isolation_profile(
        &contender(
            DeploymentScenario::Scenario1,
            LoadLevel::Medium,
            CoreId(2),
            7,
        ),
        CoreId(2),
    )
    .unwrap();

    let mut h = Harness::new("ablation");
    h.sample_size(20);
    for (name, opts) in [
        (
            "tailored_budget",
            IlpPtacOptions::for_scenario(ScenarioConstraints::scenario1()),
        ),
        (
            "untailored_budget",
            IlpPtacOptions::for_scenario(ScenarioConstraints::unconstrained()),
        ),
        (
            "tailored_strict",
            IlpPtacOptions {
                strict_stall_equality: true,
                ..IlpPtacOptions::for_scenario(ScenarioConstraints::scenario1())
            },
        ),
        (
            "fully_tc_variant",
            IlpPtacOptions {
                contender_constraints: false,
                ..IlpPtacOptions::for_scenario(ScenarioConstraints::scenario1())
            },
        ),
    ] {
        let model = IlpPtacModel::with_options(&platform, opts);
        h.bench(name, || {
            black_box(model.pairwise_bound(&app, &load).unwrap().delta_cycles)
        });
    }

    h.finish();
}
