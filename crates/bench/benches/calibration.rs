//! Criterion benches for the Table 2 calibration campaign (experiment
//! E1 in DESIGN.md).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tc27x_sim::{CoreId, Region, System};
use workloads::micro;

fn bench_calibration(c: &mut Criterion) {
    let mut g = c.benchmark_group("calibration");
    g.sample_size(10);

    g.bench_function("full_table2_campaign", |b| {
        b.iter(|| black_box(mbta::calibrate().unwrap()))
    });

    g.bench_function("single_probe_code_stream", |b| {
        b.iter(|| {
            let mut sys = System::tc277();
            sys.load(CoreId(1), &micro::code_stream(Region::Pflash0, 320))
                .unwrap();
            black_box(sys.run().unwrap().counters(CoreId(1)).pmem_stall)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_calibration);
criterion_main!(benches);
