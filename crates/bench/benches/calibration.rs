//! Benches for the Table 2 calibration campaign (experiment E1 in
//! DESIGN.md).

use contention_bench::harness::Harness;
use std::hint::black_box;
use tc27x_sim::{CoreId, Region, System};
use workloads::micro;

fn main() {
    let mut h = Harness::new("calibration");
    h.sample_size(10);

    h.bench("full_table2_campaign", || {
        black_box(mbta::calibrate().unwrap())
    });

    h.bench("single_probe_code_stream", || {
        let mut sys = System::tc277();
        sys.load(CoreId(1), &micro::code_stream(Region::Pflash0, 320))
            .unwrap();
        black_box(sys.run().unwrap().counters(CoreId(1)).pmem_stall)
    });

    h.finish();
}
