//! The telemetry determinism contract at the bench layer: an
//! instrumented Scenario 2 sweep must emit a deterministic record
//! subset that is (a) byte-identical to the golden capture, (b)
//! byte-identical across worker counts and timing kernels, and (c)
//! exportable as a structurally valid Chrome `trace_event` document.
//!
//! Regenerate the golden after an intentional schema change with
//! `BLESS_TELEMETRY=1 cargo test -p contention-bench --test telemetry`.

use contention_bench::{sweep_csv, sweep_fallback_report};
use mbta::{ExecEngine, Format, Telemetry, Val};
use obs::json::{parse, Json};
use std::sync::Arc;
use tc27x_sim::{DeploymentScenario, Engine};

/// Runs the golden Scenario 2 sweep (CSV plus fallback report) with a
/// recorder attached, mirroring `sweep --scenario sc2 --telemetry …`,
/// and returns the rendered JSONL stream.
fn instrumented_sweep(jobs: usize, kernel: Engine) -> String {
    let telemetry = Arc::new(Telemetry::new("sweep sc2"));
    telemetry.meta("scenario", Val::str("sc2"));
    let engine = ExecEngine::new(jobs)
        .with_sim_engine(kernel)
        .with_telemetry(Arc::clone(&telemetry));
    sweep_csv(&engine, DeploymentScenario::Scenario2).unwrap();
    sweep_fallback_report(
        &engine,
        DeploymentScenario::Scenario2,
        None,
        Some(&telemetry),
    )
    .unwrap();
    telemetry.record_engine(&engine.report());
    telemetry.render(Format::Jsonl)
}

/// The deterministic subset of a JSONL stream (what the contract pins).
fn det_subset(jsonl: &str) -> String {
    jsonl
        .lines()
        .filter(|l| l.contains("\"det\":true"))
        .map(|l| format!("{l}\n"))
        .collect()
}

fn golden_path() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/telemetry_sc2.jsonl")
}

#[test]
fn det_stream_matches_the_golden_snapshot() {
    let det = det_subset(&instrumented_sweep(1, Engine::Event));
    let path = golden_path();
    if std::env::var("BLESS_TELEMETRY").is_ok() {
        std::fs::write(&path, &det).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap();
    assert_eq!(
        det, golden,
        "deterministic telemetry diverged from the golden capture \
         (BLESS_TELEMETRY=1 to re-bless an intentional change)"
    );
}

#[test]
fn det_stream_is_identical_across_jobs_and_kernels() {
    let reference = instrumented_sweep(1, Engine::Event);
    let parallel = instrumented_sweep(4, Engine::Event);
    let tick = instrumented_sweep(1, Engine::Tick);
    assert_eq!(
        det_subset(&reference),
        det_subset(&parallel),
        "det subset must not depend on --jobs"
    );
    assert_eq!(
        det_subset(&reference),
        det_subset(&tick),
        "det subset must not depend on the timing kernel"
    );
    // The full streams DO differ (wall-clock lives in the profile
    // record), so the identity above is not vacuous.
    assert!(reference.contains("\"det\":false"));
    assert!(reference.contains("wall_seconds"));
}

#[test]
fn chrome_export_is_a_valid_trace() {
    let telemetry = Arc::new(Telemetry::new("sweep sc2"));
    let engine = ExecEngine::new(2).with_telemetry(Arc::clone(&telemetry));
    sweep_csv(&engine, DeploymentScenario::Scenario2).unwrap();
    telemetry.record_engine(&engine.report());
    let trace = telemetry.render(Format::Chrome);

    let doc = parse(&trace).expect("chrome export parses as one JSON document");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let spans: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert!(!spans.is_empty(), "at least one complete-span event");
    for e in &spans {
        assert!(e.get("tid").and_then(Json::as_u64).is_some());
        assert!(e.get("ts").and_then(Json::as_u64).is_some());
        assert!(e.get("dur").and_then(Json::as_u64).is_some_and(|d| d >= 1));
        assert!(e.get("name").and_then(Json::as_str).is_some());
    }
    assert!(
        events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("M")),
        "metadata event names the process"
    );
}
