//! Registry gate for the built-in platform descriptions: every profile
//! the registry offers must be internally consistent, and the simulator
//! it parameterizes must produce measurements that pass the model-side
//! Strict validator built from the *same* description — the end-to-end
//! contract that keeps `--platform NAME` safe to hand to users.

use contention::validate::{ValidationPolicy, Validator};
use contention::Platform;
use tc27x_sim::{CoreId, DeploymentScenario};

#[test]
fn every_builtin_description_is_internally_consistent() {
    let names = platform::PlatformDesc::names();
    assert!(
        names.contains(&"tc27x") && names.contains(&"tc27x-tdma") && names.contains(&"ahb2"),
        "registry lost a built-in: {names:?}"
    );
    for name in names {
        let desc = platform::PlatformDesc::builtin(name)
            .unwrap_or_else(|| panic!("{name} is listed but not constructible"));
        assert_eq!(desc.name, name, "registry name must match the description");
        desc.validate()
            .unwrap_or_else(|e| panic!("builtin {name} fails validation: {e}"));
    }
    assert!(
        platform::PlatformDesc::builtin("no-such-soc").is_none(),
        "unknown names must not resolve"
    );
}

#[test]
fn every_builtin_platform_produces_strictly_valid_profiles() {
    for name in platform::PlatformDesc::names() {
        let desc = platform::PlatformDesc::builtin(name).unwrap();
        let tables = Platform::from_desc(&desc);
        let validator = Validator::new(&tables, ValidationPolicy::Strict);
        // LowTraffic places code in Pflash0 and data in the LMU — the
        // two slots every built-in provides — so the same workload is
        // feasible on all of them.
        let core = CoreId(desc.app_core as u8);
        let app = workloads::control_loop(DeploymentScenario::LowTraffic, core, 7);
        let profile = mbta::isolation_profile_for(&app, core, &desc)
            .unwrap_or_else(|e| panic!("{name}: isolation run failed: {e}"));
        let report = validator.check(&profile);
        assert!(
            report.is_clean(),
            "{name}: simulator profile violates the derived model invariants: {report:?}"
        );
    }
}
