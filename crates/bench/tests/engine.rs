//! End-to-end determinism of the parallel experiment engine: the sweep
//! binary's CSV — the largest single batch any artefact submits — must
//! be *byte*-identical whether the engine runs with one worker or many.

use contention_bench::sweep_csv;
use mbta::ExecEngine;
use tc27x_sim::DeploymentScenario;

#[test]
fn sweep_csv_is_byte_identical_across_worker_counts() {
    let single = ExecEngine::sequential();
    let multi = ExecEngine::new(4);
    let a = sweep_csv(&single, DeploymentScenario::Scenario1).unwrap();
    let b = sweep_csv(&multi, DeploymentScenario::Scenario1).unwrap();
    assert_eq!(a, b, "sweep CSV must not depend on the worker count");

    // Sanity: the CSV has a header plus one row per intensity step.
    assert_eq!(a.lines().count(), 1 + 11);
    assert!(a.starts_with("intensity_permille,"));
}

#[test]
fn sweep_batch_reuses_the_idle_contender_profile_on_rerun() {
    let engine = ExecEngine::new(2);
    sweep_csv(&engine, DeploymentScenario::Scenario1).unwrap();
    let first = engine.report();
    // A second sweep over the same engine re-submits the same isolation
    // jobs; every one is a cache hit and only the (uncacheable) co-runs
    // simulate again.
    sweep_csv(&engine, DeploymentScenario::Scenario1).unwrap();
    let second = engine.report();
    assert_eq!(second.cache_misses, first.cache_misses);
    assert_eq!(
        second.cache_hits,
        first.cache_hits + first.cache_misses,
        "every isolation job of the rerun must hit the cache"
    );
}
