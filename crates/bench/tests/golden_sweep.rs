//! Golden regression for the ILP-PTAC evaluation output: with the
//! default solve budget the sweep CSV must stay byte-identical to the
//! captured pre-refactor run, at any worker count. This pins down that
//! neither the validation pass, the budget plumbing nor the engine
//! hardening changed a single emitted digit.

use contention_bench::{sweep_csv, sweep_fallback_report};
use mbta::{CampaignConfig, CampaignRunner, ExecEngine};
use tc27x_sim::DeploymentScenario;

const GOLDEN: &str = include_str!("golden/sweep_sc1.csv");
const GOLDEN_SC2: &str = include_str!("golden/sweep_sc2.csv");
const GOLDEN_SC2_TDMA: &str = include_str!("golden/sweep_sc2_tdma.csv");
const GOLDEN_LOW_AHB2: &str = include_str!("golden/sweep_low_ahb2.csv");

#[test]
fn sweep_csv_matches_golden_capture_at_jobs_1_and_4() {
    for jobs in [1usize, 4] {
        let engine = ExecEngine::new(jobs);
        let csv = sweep_csv(&engine, DeploymentScenario::Scenario1).unwrap();
        assert_eq!(
            csv, GOLDEN,
            "sweep CSV diverged from the golden capture at --jobs {jobs}"
        );
    }
}

#[test]
fn scenario2_sweep_csv_matches_golden_capture() {
    for jobs in [1usize, 4] {
        let engine = ExecEngine::new(jobs);
        let csv = sweep_csv(&engine, DeploymentScenario::Scenario2).unwrap();
        assert_eq!(
            csv, GOLDEN_SC2,
            "Scenario 2 sweep CSV diverged from the golden capture at --jobs {jobs}"
        );
    }
}

/// The non-default platforms have golden captures of their own: the
/// TDMA TC27x variant on the Scenario 2 mix and the dual-core AHB
/// machine on the low-traffic mix (the only deployment it can host —
/// Pf1 is absent there). Worker-count invariance must hold on these
/// platforms exactly as on the default.
#[test]
fn tdma_platform_sweep_matches_its_golden_capture() {
    for jobs in [1usize, 4] {
        let engine = ExecEngine::new(jobs).with_platform(platform::PlatformDesc::tc27x_tdma());
        let csv = sweep_csv(&engine, DeploymentScenario::Scenario2).unwrap();
        assert_eq!(
            csv, GOLDEN_SC2_TDMA,
            "tc27x-tdma sweep CSV diverged from the golden capture at --jobs {jobs}"
        );
    }
}

#[test]
fn ahb2_platform_sweep_matches_its_golden_capture() {
    for jobs in [1usize, 4] {
        let engine = ExecEngine::new(jobs).with_platform(platform::PlatformDesc::ahb2());
        let csv = sweep_csv(&engine, DeploymentScenario::LowTraffic).unwrap();
        assert_eq!(
            csv, GOLDEN_LOW_AHB2,
            "ahb2 sweep CSV diverged from the golden capture at --jobs {jobs}"
        );
    }
}

/// The crash-safety machinery must be invisible in the output: a
/// journaled Scenario 2 sweep, and a resume of that journal on a fresh
/// single-worker engine, both reproduce the golden capture byte for
/// byte.
#[test]
fn journaled_and_resumed_sweeps_match_the_golden_capture() {
    let mut path = std::env::temp_dir();
    path.push(format!("bench-golden-journal-{}", std::process::id()));
    {
        let engine = ExecEngine::new(4);
        let campaign =
            CampaignRunner::journaled(&engine, CampaignConfig::default(), &path).unwrap();
        let csv = sweep_csv(&campaign, DeploymentScenario::Scenario2).unwrap();
        assert_eq!(csv, GOLDEN_SC2, "journaled sweep diverged from golden");
    }
    let engine = ExecEngine::new(1);
    let (campaign, report) =
        CampaignRunner::resumed(&engine, CampaignConfig::default(), &path).unwrap();
    assert_eq!(report.truncated_bytes, 0);
    let csv = sweep_csv(&campaign, DeploymentScenario::Scenario2).unwrap();
    assert_eq!(csv, GOLDEN_SC2, "resumed sweep diverged from golden");
    assert_eq!(
        engine.report().simulations_run,
        0,
        "resume must replay, not re-simulate"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn default_budget_never_falls_back_budget_one_always_does() {
    let engine = ExecEngine::new(2);
    // Warm the memo cache so both reports replay cached profiles.
    sweep_csv(&engine, DeploymentScenario::Scenario1).unwrap();

    let exact = sweep_fallback_report(&engine, DeploymentScenario::Scenario1, None, None).unwrap();
    assert_eq!(exact.ftc, 0, "default budget must solve every pair exactly");
    assert_eq!(exact.ilp, 11);
    assert_eq!(exact.rate(), 0.0);

    // A starved budget degrades every pair — and with a recorder
    // attached, the solves and the fallback warning are recorded.
    let telemetry = mbta::Telemetry::new("golden-fallback");
    let starved = sweep_fallback_report(
        &engine,
        DeploymentScenario::Scenario1,
        Some(1),
        Some(&telemetry),
    )
    .unwrap();
    assert_eq!(
        starved.ilp, 0,
        "a node budget of 1 must always degrade to fTC"
    );
    assert_eq!(starved.ftc, 11);
    assert_eq!(starved.rate(), 1.0);
    assert_eq!(telemetry.det_counter("ilp.solves"), 11);
    assert_eq!(telemetry.det_counter("ilp.fallback_ftc"), 11);
    assert_eq!(telemetry.warning_count(), 1, "fallback warning recorded");
}
