//! Hand-rolled JSON: a typed writer value and a small validating
//! parser. The workspace is dependency-free by design, so the telemetry
//! sinks write JSON through [`Val`] and the trace validator / JSONL
//! schema lint read it back through [`parse`].

use std::fmt;

/// A JSON value for *writing*. Rendering is fully deterministic: object
/// keys keep their insertion order and numbers print in Rust's
/// shortest-round-trip form.
#[derive(Clone, Debug, PartialEq)]
pub enum Val {
    /// Unsigned integer (the workspace's native metric type; renders
    /// exactly, beyond `f64` precision).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point. Non-finite values render as `null` — JSON has no
    /// NaN/infinity.
    F64(f64),
    /// String (escaped on render).
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Array.
    Arr(Vec<Val>),
    /// Object as ordered key/value pairs.
    Obj(Vec<(String, Val)>),
}

impl Val {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Val {
        Val::Str(s.into())
    }

    /// Renders the value into `out`.
    pub fn render(&self, out: &mut String) {
        match self {
            Val::U64(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Val::I64(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Val::F64(v) => {
                if v.is_finite() {
                    let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Val::Str(s) => escape_into(s, out),
            Val::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Val::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            Val::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders the value to a fresh string.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.render(&mut s);
        s
    }
}

/// Escapes `s` as a JSON string literal (with quotes) into `out`.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value. Numbers keep their raw lexeme so 64-bit
/// integers survive a round trip without `f64` precision loss.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw lexeme.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer lexeme.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if the value is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON parse error with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// [`ParseError`] at the first offending byte.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

/// Recursion guard: telemetry documents are shallow; anything deeper is
/// malformed input, not a use case.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates are not paired up — telemetry
                            // strings are plain ASCII; map them to the
                            // replacement character rather than failing.
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8"))?;
        Ok(Json::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_parse_round_trip() {
        let v = Val::Obj(vec![
            ("k".into(), Val::str("span")),
            ("det".into(), Val::Bool(true)),
            ("id".into(), Val::U64(u64::MAX)),
            ("neg".into(), Val::I64(-3)),
            ("rate".into(), Val::F64(0.5)),
            (
                "arr".into(),
                Val::Arr(vec![Val::U64(1), Val::U64(2), Val::Bool(false)]),
            ),
            ("msg".into(), Val::str("a \"quoted\"\nline\t\u{1}")),
        ]);
        let text = v.to_json();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.get("k").unwrap().as_str(), Some("span"));
        assert_eq!(parsed.get("det").unwrap().as_bool(), Some(true));
        // u64::MAX survives: the raw lexeme is preserved.
        assert_eq!(parsed.get("id").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(parsed.get("rate").unwrap().as_f64(), Some(0.5));
        assert_eq!(parsed.get("arr").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            parsed.get("msg").unwrap().as_str(),
            Some("a \"quoted\"\nline\t\u{1}")
        );
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Val::F64(f64::NAN).to_json(), "null");
        assert_eq!(Val::F64(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"\\x\"",
            "nul",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_standard_documents() {
        let doc = r#" {"a": [1, -2.5, 3e2, null], "b": {"c": "d"}, "e": false} "#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("e").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_f64(), Some(300.0));
        assert_eq!(arr[3], Json::Null);
    }

    #[test]
    fn depth_guard_rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(parse(&ok).is_ok());
    }
}
