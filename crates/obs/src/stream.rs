//! The merged telemetry stream and its three renderers.
//!
//! A [`Stream`] is the *already merged*, deterministic view of a run:
//! spans in merge order, metrics in name order, warnings in code order.
//! The renderers are pure functions of the stream, so two streams with
//! equal deterministic content render byte-identical deterministic
//! records regardless of how they were collected.

use crate::json::{escape_into, Val};
use crate::metrics::Registry;
use crate::span::SpanRec;
use std::fmt::Write as _;

/// A deduplicated warning: one record per code, however often it fired.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Warning {
    /// Stable machine-readable code (e.g. `journal.torn`).
    pub code: String,
    /// The first message recorded under this code.
    pub message: String,
    /// How many times the warning fired.
    pub count: u64,
}

/// A named dense matrix of deterministic counters (e.g. the contention
/// attribution ledger): row-major `cells` under row/column labels.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MatrixRec {
    /// Metric-style name (e.g. `attribution.wait`).
    pub name: String,
    /// Row labels, in cell order.
    pub rows: Vec<String>,
    /// Column labels, in cell order.
    pub cols: Vec<String>,
    /// Row-major cells; `rows.len() * cols.len()` entries.
    pub cells: Vec<u64>,
}

/// A named table of deterministic values (e.g. the bound-tightness
/// audit): column headers plus value rows.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TableRec {
    /// Metric-style name (e.g. `tightness.sc1`).
    pub name: String,
    /// Column headers.
    pub cols: Vec<String>,
    /// One entry per row; each row has `cols.len()` values.
    pub rows: Vec<Vec<Val>>,
}

/// The merged telemetry of one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Stream {
    /// Run-invariant identity fields of the `meta` record (command,
    /// config fingerprint, schema version — never jobs or engine, which
    /// legitimately differ between runs that must compare equal).
    pub meta: Vec<(String, Val)>,
    /// Spans, already in deterministic merge order.
    pub spans: Vec<SpanRec>,
    /// Deterministic metrics: logical quantities only.
    pub det: Registry,
    /// Deterministic matrices, in name order.
    pub matrices: Vec<MatrixRec>,
    /// Deterministic tables, in name order.
    pub tables: Vec<TableRec>,
    /// Non-deterministic metrics: anything engine- or
    /// scheduling-dependent (fast-forward gaps, claims depth).
    pub nondet: Registry,
    /// Warnings, in code order.
    pub warnings: Vec<Warning>,
    /// The non-deterministic `profile` record: wall-clock time, worker
    /// count, engine — everything a byte-compare must ignore.
    pub profile: Vec<(String, Val)>,
}

/// Renders one JSONL record: `{"k":<kind>,"det":<det>,<fields>}`.
fn record(out: &mut String, kind: &str, det: bool, fields: &[(String, Val)]) {
    out.push_str("{\"k\":\"");
    out.push_str(kind);
    out.push_str("\",\"det\":");
    out.push_str(if det { "true" } else { "false" });
    for (key, value) in fields {
        out.push(',');
        escape_into(key, out);
        out.push(':');
        value.render(out);
    }
    out.push_str("}\n");
}

fn span_fields(s: &SpanRec) -> Vec<(String, Val)> {
    let mut fields = vec![
        ("id".to_string(), Val::U64(s.id)),
        ("parent".to_string(), Val::U64(s.parent)),
        ("name".to_string(), Val::str(s.name.clone())),
        ("track".to_string(), Val::U64(s.track as u64)),
        ("start".to_string(), Val::U64(s.start)),
        ("dur".to_string(), Val::U64(s.dur)),
    ];
    fields.extend(s.args.iter().cloned());
    fields
}

fn str_arr(items: &[String]) -> Val {
    Val::Arr(items.iter().map(|s| Val::str(s.clone())).collect())
}

fn registry_records(out: &mut String, reg: &Registry, det: bool) {
    for (name, value) in reg.counters() {
        record(
            out,
            "counter",
            det,
            &[
                ("name".to_string(), Val::str(name)),
                ("value".to_string(), Val::U64(value)),
            ],
        );
    }
    for (name, hist) in reg.hists() {
        let mut fields = vec![("name".to_string(), Val::str(name))];
        fields.extend(hist.to_fields());
        record(out, "hist", det, &fields);
    }
}

impl Stream {
    /// An empty stream.
    pub fn new() -> Self {
        Stream::default()
    }

    /// Renders the JSONL event stream. Record order: the `meta` record,
    /// spans, counters, histograms, matrices, tables and warnings (all
    /// `det:true`), then the non-deterministic metrics and the `profile`
    /// record (`det:false`).
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        record(&mut out, "meta", true, &self.meta);
        for span in &self.spans {
            record(&mut out, "span", true, &span_fields(span));
        }
        registry_records(&mut out, &self.det, true);
        for m in &self.matrices {
            record(
                &mut out,
                "matrix",
                true,
                &[
                    ("name".to_string(), Val::str(m.name.clone())),
                    ("rows".to_string(), str_arr(&m.rows)),
                    ("cols".to_string(), str_arr(&m.cols)),
                    (
                        "cells".to_string(),
                        Val::Arr(m.cells.iter().map(|&c| Val::U64(c)).collect()),
                    ),
                ],
            );
        }
        for t in &self.tables {
            record(
                &mut out,
                "table",
                true,
                &[
                    ("name".to_string(), Val::str(t.name.clone())),
                    ("cols".to_string(), str_arr(&t.cols)),
                    (
                        "rows".to_string(),
                        Val::Arr(t.rows.iter().map(|r| Val::Arr(r.clone())).collect()),
                    ),
                ],
            );
        }
        for w in &self.warnings {
            record(
                &mut out,
                "warn",
                true,
                &[
                    ("code".to_string(), Val::str(w.code.clone())),
                    ("message".to_string(), Val::str(w.message.clone())),
                    ("count".to_string(), Val::U64(w.count)),
                ],
            );
        }
        registry_records(&mut out, &self.nondet, false);
        record(&mut out, "profile", false, &self.profile);
        out
    }

    /// Renders a Chrome `trace_event` JSON document: one complete-span
    /// (`"ph":"X"`) event per span on its track, timestamps in logical
    /// units. Loadable in Perfetto / `chrome://tracing`.
    pub fn render_chrome(&self) -> String {
        let mut events: Vec<Val> = Vec::with_capacity(self.spans.len() + 1);
        let name = self
            .meta
            .iter()
            .find(|(k, _)| k == "command")
            .and_then(|(_, v)| match v {
                Val::Str(s) => Some(s.clone()),
                _ => None,
            })
            .unwrap_or_else(|| "aurix-contention".to_string());
        events.push(Val::Obj(vec![
            ("ph".to_string(), Val::str("M")),
            ("pid".to_string(), Val::U64(1)),
            ("tid".to_string(), Val::U64(0)),
            ("name".to_string(), Val::str("process_name")),
            (
                "args".to_string(),
                Val::Obj(vec![("name".to_string(), Val::str(name))]),
            ),
        ]));
        for s in &self.spans {
            let mut args = vec![
                ("id".to_string(), Val::str(format!("{:016x}", s.id))),
                ("parent".to_string(), Val::str(format!("{:016x}", s.parent))),
            ];
            args.extend(s.args.iter().cloned());
            events.push(Val::Obj(vec![
                ("ph".to_string(), Val::str("X")),
                ("pid".to_string(), Val::U64(1)),
                ("tid".to_string(), Val::U64(s.track as u64)),
                ("ts".to_string(), Val::U64(s.start)),
                ("dur".to_string(), Val::U64(s.dur.max(1))),
                ("name".to_string(), Val::str(s.name.clone())),
                ("args".to_string(), Val::Obj(args)),
            ]));
        }
        let doc = Val::Obj(vec![
            ("traceEvents".to_string(), Val::Arr(events)),
            ("displayTimeUnit".to_string(), Val::str("ms")),
        ]);
        let mut out = doc.to_json();
        out.push('\n');
        out
    }

    /// Renders the human summary table.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str("telemetry summary\n");
        for (key, value) in &self.meta {
            let _ = writeln!(out, "  {key}: {}", plain(value));
        }
        let width = self
            .det
            .counters()
            .map(|(n, _)| n.len())
            .chain(self.det.hists().map(|(n, _)| n.len()))
            .chain(self.nondet.counters().map(|(n, _)| n.len()))
            .chain(self.nondet.hists().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        for (label, reg) in [("metrics", &self.det), ("non-deterministic", &self.nondet)] {
            if reg.is_empty() {
                continue;
            }
            let _ = writeln!(out, "  {label}:");
            for (name, value) in reg.counters() {
                let _ = writeln!(out, "    {name:width$}  {value}");
            }
            for (name, hist) in reg.hists() {
                let _ = writeln!(
                    out,
                    "    {name:width$}  count={} sum={} mean={:.1} max={}",
                    hist.count(),
                    hist.sum(),
                    hist.mean(),
                    hist.max().unwrap_or(0),
                );
            }
        }
        for m in &self.matrices {
            let _ = writeln!(
                out,
                "  matrix {} ({}x{}): total={}",
                m.name,
                m.rows.len(),
                m.cols.len(),
                m.cells.iter().sum::<u64>()
            );
        }
        for t in &self.tables {
            let _ = writeln!(out, "  table {} ({} rows)", t.name, t.rows.len());
        }
        if self.spans.is_empty() {
            out.push_str("  spans: none\n");
        } else {
            let _ = writeln!(out, "  spans: {}", self.spans.len());
        }
        if self.warnings.is_empty() {
            out.push_str("  warnings: none\n");
        } else {
            for w in &self.warnings {
                let _ = writeln!(out, "  warning [{}] x{}: {}", w.code, w.count, w.message);
            }
        }
        out
    }
}

/// Renders a [`Val`] without quotes for the summary table.
fn plain(v: &Val) -> String {
    match v {
        Val::Str(s) => s.clone(),
        other => other.to_json(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample() -> Stream {
        let mut s = Stream::new();
        s.meta = vec![
            ("command".to_string(), Val::str("sweep sc2")),
            ("schema".to_string(), Val::U64(1)),
        ];
        s.spans
            .push(SpanRec::new(7, 0, "job:a", 1, 0, 100).with_arg("kind", Val::str("iso")));
        s.spans.push(SpanRec::new(8, 0, "job:b", 1, 100, 50));
        s.det.add("exec.cache_hits", 3);
        s.det.observe("sri.lmu.queue_delay", 11);
        s.matrices.push(MatrixRec {
            name: "attribution.wait".to_string(),
            rows: vec!["lmu/c0".to_string()],
            cols: vec!["c1".to_string(), "sched".to_string()],
            cells: vec![11, 0],
        });
        s.tables.push(TableRec {
            name: "tightness.sc1".to_string(),
            cols: vec!["what".to_string(), "observed".to_string()],
            rows: vec![vec![Val::str("co"), Val::U64(11)]],
        });
        s.nondet.add("kernel.ff_jumps", 42);
        s.warnings.push(Warning {
            code: "journal.torn".to_string(),
            message: "8 byte(s) of a torn trailing record truncated".to_string(),
            count: 1,
        });
        s.profile = vec![
            ("jobs".to_string(), Val::U64(4)),
            ("wall_seconds".to_string(), Val::F64(0.25)),
        ];
        s
    }

    #[test]
    fn jsonl_records_parse_and_carry_det_flags() {
        let text = sample().render_jsonl();
        let mut det_kinds = Vec::new();
        let mut nondet_kinds = Vec::new();
        for line in text.lines() {
            let v = parse(line).unwrap();
            let kind = v.get("k").unwrap().as_str().unwrap().to_string();
            match v.get("det").unwrap().as_bool().unwrap() {
                true => det_kinds.push(kind),
                false => nondet_kinds.push(kind),
            }
        }
        assert_eq!(
            det_kinds,
            vec!["meta", "span", "span", "counter", "hist", "matrix", "table", "warn"]
        );
        assert_eq!(nondet_kinds, vec!["counter", "profile"]);
    }

    #[test]
    fn wall_clock_only_in_nondet_records() {
        let text = sample().render_jsonl();
        for line in text.lines() {
            let v = parse(line).unwrap();
            if v.get("det").unwrap().as_bool() == Some(true) {
                assert!(
                    !line.contains("wall") && !line.contains("seconds"),
                    "det record leaks wall clock: {line}"
                );
            }
        }
    }

    #[test]
    fn chrome_trace_is_valid_and_per_track_monotonic() {
        let doc = sample().render_chrome();
        let v = parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 3, "metadata + two spans");
        let mut last_ts: std::collections::BTreeMap<u64, u64> = Default::default();
        for e in events {
            if e.get("ph").unwrap().as_str() != Some("X") {
                continue;
            }
            let tid = e.get("tid").unwrap().as_u64().unwrap();
            let ts = e.get("ts").unwrap().as_u64().unwrap();
            assert!(e.get("dur").unwrap().as_u64().unwrap() >= 1);
            if let Some(prev) = last_ts.insert(tid, ts) {
                assert!(ts >= prev, "track {tid} not monotonic");
            }
        }
    }

    #[test]
    fn summary_mentions_metrics_and_warnings() {
        let s = sample().render_summary();
        assert!(s.contains("exec.cache_hits"));
        assert!(s.contains("journal.torn"));
        assert!(s.contains("spans: 2"));
        assert!(s.contains("matrix attribution.wait (1x2): total=11"));
        assert!(s.contains("table tightness.sc1 (1 rows)"));
        let empty = Stream::new().render_summary();
        assert!(empty.contains("warnings: none"));
        assert!(empty.contains("spans: none"));
    }

    #[test]
    fn equal_det_content_renders_equal_det_records() {
        let a = sample();
        let mut b = sample();
        b.profile = vec![("jobs".to_string(), Val::U64(1))];
        b.nondet = Registry::new();
        let det_lines = |s: &Stream| -> Vec<String> {
            s.render_jsonl()
                .lines()
                .filter(|l| l.contains("\"det\":true"))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(det_lines(&a), det_lines(&b));
    }
}
