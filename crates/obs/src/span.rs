//! Hierarchical spans with deterministic identities.
//!
//! A span is a named interval on a logical timeline: its `start` and
//! `dur` are *logical* quantities (simulated cycles for jobs, solver
//! nodes for ILP solves), never wall-clock time. IDs are FNV-derived
//! from the parent ID, the span name and a deterministic sequence key,
//! so the same campaign produces the same span tree on every run, at
//! any worker count.

use crate::json::Val;
use crate::Fnv;

/// Derives a deterministic span ID from its position in the tree.
pub fn span_id(parent: u64, name: &str, seq: u64) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(parent);
    h.write_str(name);
    h.write_u64(seq);
    h.finish()
}

/// One recorded span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRec {
    /// Deterministic span ID (see [`span_id`]).
    pub id: u64,
    /// Parent span ID; `0` for roots.
    pub parent: u64,
    /// Human-readable name.
    pub name: String,
    /// Display track (Chrome `tid`); per-core for sim jobs, a dedicated
    /// track for solver spans.
    pub track: u32,
    /// Logical start on the track's timeline.
    pub start: u64,
    /// Logical duration (cycles, nodes, …).
    pub dur: u64,
    /// Extra attributes, in insertion order.
    pub args: Vec<(String, Val)>,
}

impl SpanRec {
    /// Creates a span with no extra attributes.
    pub fn new(
        id: u64,
        parent: u64,
        name: impl Into<String>,
        track: u32,
        start: u64,
        dur: u64,
    ) -> Self {
        SpanRec {
            id,
            parent,
            name: name.into(),
            track,
            start,
            dur,
            args: Vec::new(),
        }
    }

    /// Adds an attribute (builder style).
    #[must_use]
    pub fn with_arg(mut self, key: impl Into<String>, value: Val) -> Self {
        self.args.push((key.into(), value));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_and_position_sensitive() {
        let root = span_id(0, "run", 0);
        assert_eq!(root, span_id(0, "run", 0));
        assert_ne!(root, span_id(0, "run", 1));
        assert_ne!(root, span_id(0, "ran", 0));
        assert_ne!(span_id(root, "job", 7), span_id(0, "job", 7));
    }

    #[test]
    fn builder_collects_args_in_order() {
        let s = SpanRec::new(1, 0, "job", 2, 10, 5)
            .with_arg("kind", Val::str("iso"))
            .with_arg("cycles", Val::U64(5));
        assert_eq!(s.args.len(), 2);
        assert_eq!(s.args[0].0, "kind");
        assert_eq!(s.track, 2);
    }
}
