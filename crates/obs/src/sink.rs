//! Telemetry sink selection: `--telemetry <path>[:format]`.

use std::fmt;
use std::str::FromStr;

/// The output format of a telemetry sink.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Format {
    /// One JSON object per line; the deterministic (`"det":true`)
    /// subset is byte-identical across worker counts and engines.
    #[default]
    Jsonl,
    /// Chrome `trace_event` JSON, loadable in Perfetto or
    /// `chrome://tracing`.
    Chrome,
    /// The human summary table (also what the stderr footer shows).
    Summary,
}

impl Format {
    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Format::Jsonl => "jsonl",
            Format::Chrome => "chrome",
            Format::Summary => "summary",
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Format {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" | "json" => Ok(Format::Jsonl),
            "chrome" | "trace" => Ok(Format::Chrome),
            "summary" => Ok(Format::Summary),
            _ => Err(()),
        }
    }
}

/// A parsed `--telemetry` argument: an output path plus a format.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SinkSpec {
    /// Output path; `-` means stderr.
    pub path: String,
    /// Output format.
    pub format: Format,
}

/// Error for a malformed sink spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSinkError(String);

impl fmt::Display for ParseSinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad telemetry sink `{}` (expected <path>[:jsonl|chrome|summary])",
            self.0
        )
    }
}

impl std::error::Error for ParseSinkError {}

impl FromStr for SinkSpec {
    type Err = ParseSinkError;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        // Only a *recognized* format suffix is split off, so paths
        // containing colons (e.g. Windows drives) stay intact.
        if let Some((path, suffix)) = spec.rsplit_once(':') {
            if let Ok(format) = suffix.parse::<Format>() {
                if path.is_empty() {
                    return Err(ParseSinkError(spec.to_string()));
                }
                return Ok(SinkSpec {
                    path: path.to_string(),
                    format,
                });
            }
        }
        if spec.is_empty() {
            return Err(ParseSinkError(spec.to_string()));
        }
        Ok(SinkSpec {
            path: spec.to_string(),
            format: Format::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_path_with_and_without_format() {
        let plain: SinkSpec = "out/telemetry.jsonl".parse().unwrap();
        assert_eq!(plain.format, Format::Jsonl);
        assert_eq!(plain.path, "out/telemetry.jsonl");
        let chrome: SinkSpec = "trace.json:chrome".parse().unwrap();
        assert_eq!(chrome.format, Format::Chrome);
        assert_eq!(chrome.path, "trace.json");
        let summary: SinkSpec = "-:summary".parse().unwrap();
        assert_eq!(summary.format, Format::Summary);
        assert_eq!(summary.path, "-");
        // An unknown suffix is part of the path, not a format.
        let odd: SinkSpec = "dir:ect/ory".parse().unwrap();
        assert_eq!(odd.path, "dir:ect/ory");
        assert_eq!(odd.format, Format::Jsonl);
    }

    #[test]
    fn rejects_empty_specs() {
        assert!("".parse::<SinkSpec>().is_err());
        let err = ":chrome".parse::<SinkSpec>().unwrap_err();
        assert!(err.to_string().contains(":chrome"));
    }

    #[test]
    fn format_spellings() {
        assert_eq!("json".parse::<Format>(), Ok(Format::Jsonl));
        assert_eq!("trace".parse::<Format>(), Ok(Format::Chrome));
        assert!("csv".parse::<Format>().is_err());
        assert_eq!(Format::Chrome.to_string(), "chrome");
    }
}
