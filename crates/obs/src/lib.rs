//! Deterministic observability primitives for the contention workspace.
//!
//! This crate is the dependency-free foundation of the telemetry layer
//! (`mbta::telemetry` does the wiring): hierarchical [`SpanRec`] spans
//! with FNV-derived deterministic IDs, a [`Registry`] of counters and
//! fixed-bucket [`Hist`] histograms, and three sinks over the same
//! [`Stream`] model — a JSONL event stream, a Chrome `trace_event` JSON
//! document (loadable in Perfetto / `chrome://tracing`), and a human
//! summary table.
//!
//! The design rule that makes telemetry *regression-testable* is the
//! deterministic/non-deterministic split: every record carries a `det`
//! flag, deterministic records contain only logical quantities (cycles,
//! job indices, node counts) and wall-clock time may appear solely in
//! `det:false` records. Rendering is pure and ordered (spans in merge
//! order, metrics in name order), so the `det:true` subset of a JSONL
//! stream is byte-identical across worker counts and timing kernels.
//!
//! # Examples
//!
//! ```
//! use obs::{Hist, Registry, SpanRec, Stream};
//!
//! let mut reg = Registry::new();
//! reg.add("cache.hits", 3);
//! reg.observe("queue_delay", 11);
//! let mut stream = Stream::new();
//! stream.det = reg;
//! stream.spans.push(SpanRec::new(obs::span_id(0, "job", 1), 0, "job", 0, 0, 42));
//! let jsonl = stream.render_jsonl();
//! assert!(jsonl.lines().all(|l| l.contains("\"det\":")));
//! let trace = stream.render_chrome();
//! assert!(obs::json::parse(&trace).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod json;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod stream;

pub use json::Val;
pub use metrics::{Hist, Registry};
pub use sink::{Format, SinkSpec};
pub use span::{span_id, SpanRec};
pub use stream::{MatrixRec, Stream, TableRec, Warning};

/// An incremental FNV-1a 64-bit hasher — the same construction as the
/// model-side `StableHasher`, duplicated here so the foundation crate
/// stays dependency-free. Used to derive deterministic span IDs.
#[derive(Clone, Debug)]
pub struct Fnv(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a string (length-prefixed to avoid concatenation
    /// ambiguity).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

/// One-shot FNV-1a 64 over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_disambiguates_concatenation() {
        let h = |parts: &[&str]| {
            let mut f = Fnv::new();
            for p in parts {
                f.write_str(p);
            }
            f.finish()
        };
        assert_ne!(h(&["ab", "c"]), h(&["a", "bc"]));
        assert_eq!(h(&["ab", "c"]), h(&["ab", "c"]));
    }
}
