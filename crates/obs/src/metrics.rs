//! The metric registry: named counters and fixed-bucket histograms.
//!
//! Everything here is *commutative*: counters add, histograms merge
//! bucket-wise. Aggregated from per-job observations in any order, the
//! result is a pure function of the job set — which is what makes the
//! deterministic telemetry records independent of the worker count.

use crate::json::Val;
use std::collections::BTreeMap;

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `2^63..`.
pub const BUCKETS: usize = 65;

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket `0` holds zeros; bucket `i ≥ 1` holds values in
/// `2^(i-1) .. 2^i`. The bounds are baked in (no configuration, no
/// rebinning), so merging histograms from different workers is plain
/// element-wise addition and the result is scheduling-independent.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Hist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// The bucket index for a value.
    fn bucket(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The inclusive value range of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket(v)] += 1;
    }

    /// Merges another histogram into this one (element-wise).
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation (0.0 when empty). Display-only — deterministic
    /// records render `sum`/`count` instead.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `true` with no observations.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The non-empty buckets as `(index, count)` pairs, index-ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// The histogram as ordered JSON object fields (integers only).
    pub fn to_fields(&self) -> Vec<(String, Val)> {
        let mut fields = vec![
            ("count".to_string(), Val::U64(self.count)),
            ("sum".to_string(), Val::U64(self.sum)),
        ];
        if let (Some(mn), Some(mx)) = (self.min(), self.max()) {
            fields.push(("min".to_string(), Val::U64(mn)));
            fields.push(("max".to_string(), Val::U64(mx)));
        }
        let buckets = self
            .nonzero_buckets()
            .into_iter()
            .map(|(i, c)| Val::Arr(vec![Val::U64(i as u64), Val::U64(c)]))
            .collect();
        fields.push(("buckets".to_string(), Val::Arr(buckets)));
        fields
    }
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

/// A registry of named counters and histograms, ordered by name so
/// iteration (and hence rendering) is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Hist>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records one observation in the histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.hists.entry(name.to_string()).or_default().observe(v);
    }

    /// Merges a whole histogram into the histogram `name`.
    pub fn observe_hist(&mut self, name: &str, h: &Hist) {
        if !h.is_empty() {
            self.hists.entry(name.to_string()).or_default().merge(h);
        }
    }

    /// Merges another registry into this one.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            self.add(name, *v);
        }
        for (name, h) in &other.hists {
            self.observe_hist(name, h);
        }
    }

    /// The value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// A histogram, if present.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// All counters, name-ascending.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, name-ascending.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Hist)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// `true` with no counters and no histograms.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        let mut h = Hist::new();
        for v in [0, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.observe(v);
        }
        let nz = h.nonzero_buckets();
        // 0 → b0; 1 → b1; 2,3 → b2; 4,7 → b3; 8 → b4; MAX → b64.
        assert_eq!(nz, vec![(0, 1), (1, 1), (2, 2), (3, 2), (4, 1), (64, 1)]);
        assert_eq!(Hist::bucket_bounds(0), (0, 0));
        assert_eq!(Hist::bucket_bounds(1), (1, 1));
        assert_eq!(Hist::bucket_bounds(3), (4, 7));
        assert_eq!(Hist::bucket_bounds(64), (1 << 63, u64::MAX));
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn merge_equals_interleaved_observation() {
        let vals = [5u64, 0, 17, 9999, 3, 3, 1 << 40];
        let mut whole = Hist::new();
        for v in vals {
            whole.observe(v);
        }
        let (left, right) = vals.split_at(3);
        let mut a = Hist::new();
        let mut b = Hist::new();
        for &v in left {
            a.observe(v);
        }
        for &v in right {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn saturating_sum_never_panics() {
        let mut h = Hist::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn registry_merge_is_order_independent() {
        let mk = |pairs: &[(&str, u64)], obs: &[(&str, u64)]| {
            let mut r = Registry::new();
            for (n, v) in pairs {
                r.add(n, *v);
            }
            for (n, v) in obs {
                r.observe(n, *v);
            }
            r
        };
        let a = mk(&[("x", 1), ("y", 2)], &[("h", 10)]);
        let b = mk(&[("x", 5), ("z", 1)], &[("h", 20), ("g", 0)]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("x"), Some(6));
        assert_eq!(ab.counter("missing"), None);
        assert_eq!(ab.hist("h").unwrap().count(), 2);
        let names: Vec<&str> = ab.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["x", "y", "z"], "name-ordered iteration");
    }

    #[test]
    fn hist_fields_are_integer_only() {
        let mut h = Hist::new();
        h.observe(42);
        let obj = Val::Obj(h.to_fields()).to_json();
        assert!(obj.contains("\"count\":1"));
        assert!(obj.contains("\"sum\":42"));
        assert!(!obj.contains('.'), "no floats in det hist fields: {obj}");
        let empty = Val::Obj(Hist::new().to_fields()).to_json();
        assert!(!empty.contains("min"), "empty hist omits min/max: {empty}");
    }
}
